package topo

import (
	"strings"
	"testing"
	"time"

	"sudc/internal/units"
)

func TestStarShape(t *testing.T) {
	g := Star(64, 5)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Sats() != 64 || g.Workers() != 5 || g.Cells() != 1 {
		t.Errorf("star: sats %d workers %d cells %d, want 64/5/1", g.Sats(), g.Workers(), g.Cells())
	}
	if len(g.Edges) != 1 || g.EdgeName(0) != "sats-sudc" {
		t.Errorf("star edge = %q, want sats-sudc", g.EdgeName(0))
	}
	if _, ok := g.MinCrossDelay(); ok {
		t.Error("single-cell star reports a cross-cell delay")
	}
}

func TestWalkerShape(t *testing.T) {
	g, err := Walker(6, 32, 8, 2, 200*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Cells() != 6 {
		t.Errorf("cells = %d, want 6 (one per plane)", g.Cells())
	}
	if g.Sats() != 6*32 {
		t.Errorf("sats = %d, want %d", g.Sats(), 6*32)
	}
	// SµDCs in planes 0, 2, 4.
	if g.Workers() != 3*8 {
		t.Errorf("workers = %d, want %d", g.Workers(), 3*8)
	}
	w, ok := g.MinCrossDelay()
	if !ok || w != 200*time.Millisecond {
		t.Errorf("min cross delay = %v/%v, want 200ms/true", w, ok)
	}
	// Every plane's source must route somewhere; SµDC-less planes route
	// around the ring.
	routes, err := g.Routes()
	if err != nil {
		t.Fatal(err)
	}
	for i, nd := range g.Nodes {
		if nd.Kind == Source && routes[i] < 0 {
			t.Errorf("source %s has no route", nd.Name)
		}
	}
}

func TestWalkerTwoPlanesHasNoDuplicateRingEdges(t *testing.T) {
	g, err := Walker(2, 4, 2, 2, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for i := range g.Edges {
		name := g.EdgeName(i)
		if seen[name] {
			t.Errorf("duplicate edge %s", name)
		}
		seen[name] = true
	}
}

func TestWalkerDegenerateSingle(t *testing.T) {
	g, err := Walker(1, 64, 5, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Cells() != 1 || len(g.Edges) != 1 {
		t.Errorf("1-plane walker: cells %d edges %d, want 1/1 (the star)", g.Cells(), len(g.Edges))
	}
}

func TestWalkerRejectsBadArgs(t *testing.T) {
	cases := []struct {
		name string
		fn   func() (*Graph, error)
	}{
		{"no planes", func() (*Graph, error) { return Walker(0, 1, 1, 1, 0) }},
		{"no sats", func() (*Graph, error) { return Walker(2, 0, 1, 1, time.Second) }},
		{"no workers", func() (*Graph, error) { return Walker(2, 1, 0, 1, time.Second) }},
		{"sudcEvery too big", func() (*Graph, error) { return Walker(2, 1, 1, 3, time.Second) }},
		{"ring without delay", func() (*Graph, error) { return Walker(4, 1, 1, 2, 0) }},
	}
	for _, tc := range cases {
		if _, err := tc.fn(); err == nil {
			t.Errorf("%s: want error", tc.name)
		}
	}
}

func TestClustersShape(t *testing.T) {
	g, err := Clusters(3, 8, 4, units.GbpsOf(10), 10*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Cells() != 3 || g.Sats() != 24 || g.Workers() != 12 {
		t.Errorf("clusters: cells %d sats %d workers %d, want 3/24/12", g.Cells(), g.Sats(), g.Workers())
	}
	if len(g.Edges) != 24 {
		t.Errorf("edges = %d, want one per satellite (24)", len(g.Edges))
	}
	if _, ok := g.MinCrossDelay(); ok {
		t.Error("independent clusters report a cross-cell delay")
	}
	if g.EdgeName(0) != "c00/sat00-c00/hub" {
		t.Errorf("edge name = %q", g.EdgeName(0))
	}
}

func TestValidateRejects(t *testing.T) {
	base := func() *Graph { return Star(4, 2) }
	cases := []struct {
		name string
		mut  func(*Graph)
		want string
	}{
		{"empty", func(g *Graph) { g.Nodes = nil; g.Edges = nil }, "no nodes"},
		{"dangling edge", func(g *Graph) { g.Edges[0].To = 9 }, "dangles"},
		{"self loop", func(g *Graph) { g.Edges[0].To = 0 }, "self-loop"},
		{"dup name", func(g *Graph) { g.Nodes[1].Name = "sats" }, "duplicate"},
		{"unnamed", func(g *Graph) { g.Nodes[0].Name = "" }, "no name"},
		{"negative cell", func(g *Graph) { g.Nodes[0].Cell = -1 }, "negative cell"},
		{"gap cell", func(g *Graph) { g.Nodes[1].Cell = 2 }, "empty"},
		{"no sats", func(g *Graph) { g.Nodes[0].Sats = 0 }, "satellite"},
		{"no workers", func(g *Graph) { g.Nodes[1].Workers = 0 }, "worker"},
		{"no sudc", func(g *Graph) { g.Nodes[1].Kind = Ground; g.Edges = nil }, "no SµDC"},
		{"negative rate", func(g *Graph) { g.Edges[0].Rate = -1 }, "negative rate"},
		{"negative delay", func(g *Graph) { g.Edges[0].Delay = -time.Second }, "negative delay"},
		{"unroutable source", func(g *Graph) { g.Edges = nil }, "cannot reach"},
	}
	for _, tc := range cases {
		g := base()
		tc.mut(g)
		err := g.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.want)
		}
	}
}

func TestValidateRejectsZeroDelayCrossCellEdge(t *testing.T) {
	g := &Graph{
		Nodes: []Node{
			{Name: "a", Kind: Source, Cell: 0, Sats: 1},
			{Name: "b", Kind: SuDC, Cell: 1, Workers: 1},
		},
		Edges: []Edge{{From: 0, To: 1, Kind: ISL}},
	}
	err := g.Validate()
	if err == nil || !strings.Contains(err.Error(), "positive delay") {
		t.Errorf("err = %v, want the conservative-lookahead complaint", err)
	}
	g.Edges[0].Delay = time.Millisecond
	if err := g.Validate(); err != nil {
		t.Errorf("with delay: %v", err)
	}
}

func TestRoutesPreferNearestSuDC(t *testing.T) {
	// A relay chain: s0 → s1 → sudc. s0 must route via s1; the route
	// edge of each source must depart from that source.
	g := &Graph{
		Nodes: []Node{
			{Name: "s0", Kind: Source, Cell: 0, Sats: 1},
			{Name: "s1", Kind: Source, Cell: 0, Sats: 1},
			{Name: "dc", Kind: SuDC, Cell: 0, Workers: 1},
		},
		Edges: []Edge{
			{From: 0, To: 1, Kind: ISL},
			{From: 1, To: 2, Kind: ISL},
		},
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	routes, err := g.Routes()
	if err != nil {
		t.Fatal(err)
	}
	if routes[0] != 0 || routes[1] != 1 {
		t.Errorf("routes = %v, want [0 1 -1]", routes)
	}
	if routes[2] != -1 {
		t.Errorf("SµDC route = %d, want -1", routes[2])
	}
}

func TestAddDownlink(t *testing.T) {
	g := Star(4, 2)
	if err := g.AddDownlink("sudc", "gs-svalbard", units.GbpsOf(2), 3*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(g.Nodes) != 3 || g.Nodes[2].Kind != Ground {
		t.Fatalf("ground node not created: %+v", g.Nodes)
	}
	if err := g.AddDownlink("nope", "gs", 0, 0); err == nil {
		t.Error("unknown SµDC accepted")
	}
	if err := g.AddDownlink("sudc", "sats", 0, 0); err == nil {
		t.Error("non-ground target accepted")
	}
	// ISL edges must not terminate at the ground station.
	g.Edges = append(g.Edges, Edge{From: 0, To: 2, Kind: ISL})
	if err := g.Validate(); err == nil || !strings.Contains(err.Error(), "ground") {
		t.Errorf("ISL into ground: err = %v", err)
	}
}
