package constellation

import (
	"testing"

	"sudc/internal/core"
	"sudc/internal/units"
	"sudc/internal/workload"
)

func TestValidate(t *testing.T) {
	if err := Default64.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Constellation{
		{Satellites: 0, FramesPerMinute: 6},
		{Satellites: 64, FramesPerMinute: 0},
		{Satellites: 64, FramesPerMinute: 6, FilterRate: 1},
		{Satellites: 64, FramesPerMinute: 6, FilterRate: -0.1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestTableIIISuDCColumn(t *testing.T) {
	// Table III rightmost column: with 4 kW RTX 3090 SµDCs and a
	// 64-satellite constellation, every app needs 1 SµDC except
	// Panoptic Segmentation, which needs 4.
	for _, app := range workload.Suite {
		n, err := Default64.SuDCsNeeded(app, units.KW(4))
		if err != nil {
			t.Fatalf("%s: %v", app.Name, err)
		}
		want := 1
		if app.Name == "Panoptic Segmentation" {
			want = 4
		}
		if n != want {
			t.Errorf("%s: # SµDC = %d, want %d", app.Name, n, want)
		}
	}
}

func TestPixelDemand(t *testing.T) {
	app, _ := workload.ByName("Flood Detection")
	// 64 sats × 0.1 frames/s × 45 Mpix = 288 Mpix/s.
	d, err := Default64.PixelDemand(app)
	if err != nil {
		t.Fatal(err)
	}
	if !units.ApproxEqual(d, 288e6, 1e-9) {
		t.Errorf("demand = %v, want 2.88e8", d)
	}
	// Filtering 2/3 keeps 1/3.
	f := Default64
	f.FilterRate = 2.0 / 3
	df, _ := f.PixelDemand(app)
	if !units.ApproxEqual(df, 96e6, 1e-9) {
		t.Errorf("filtered demand = %v, want 9.6e7", df)
	}
}

func TestPixelDemandErrors(t *testing.T) {
	app := workload.Suite[0]
	bad := Constellation{Satellites: 0, FramesPerMinute: 6}
	if _, err := bad.PixelDemand(app); err == nil {
		t.Error("invalid constellation must error")
	}
	if _, err := Default64.PixelDemand(workload.App{}); err == nil {
		t.Error("invalid app must error")
	}
}

func TestDataDemand(t *testing.T) {
	app, _ := workload.ByName("Flood Detection")
	d, err := Default64.DataDemand(app)
	if err != nil {
		t.Fatal(err)
	}
	// 288 Mpix/s × 16 bit = 4.6 Gbit/s.
	if !units.ApproxEqual(float64(d), 288e6*16, 1e-9) {
		t.Errorf("data demand = %v", d)
	}
}

func TestSuDCsNeededErrors(t *testing.T) {
	app := workload.Suite[0]
	if _, err := Default64.SuDCsNeeded(app, units.Power(-1)); err == nil {
		t.Error("negative power must error")
	}
	broken := app
	broken.KPixelPerJoule = 0
	if _, err := Default64.SuDCsNeeded(broken, units.KW(4)); err == nil {
		t.Error("invalid app must error")
	}
}

func TestSuDCsNeededAtLeastOne(t *testing.T) {
	app, _ := workload.ByName("Traffic Monitoring")
	n, err := Default64.SuDCsNeeded(app, units.KW(100))
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("oversized SµDC still counts as 1, got %d", n)
	}
}

func TestRequiredComputePower(t *testing.T) {
	app, _ := workload.ByName("Flood Detection")
	p, err := Default64.RequiredComputePower(app, 1)
	if err != nil {
		t.Fatal(err)
	}
	// 288 Mpix/s ÷ 307 kpix/J ≈ 938 W.
	if got := p.Watts(); got < 900 || got > 1000 {
		t.Errorf("required power = %.0f W, want ≈938", got)
	}
	// 2× efficiency halves it.
	p2, _ := Default64.RequiredComputePower(app, 2)
	if !units.ApproxEqual(float64(p2), float64(p)/2, 1e-12) {
		t.Error("efficiency must divide required power")
	}
	if _, err := Default64.RequiredComputePower(app, 0.5); err == nil {
		t.Error("efficiency < 1 must error")
	}
}

func TestFig19FilteringShrinksTheSuDC(t *testing.T) {
	// Paper Fig. 19: "At a filtering rate of zero, a 4 kW SµDC is
	// required, but at a filtering rate of 0.5, only a 2 kW SµDC."
	base := core.DefaultConfig(units.KW(4))
	half, err := CollaborativeConfig(base, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !units.ApproxEqual(float64(half.ComputePower), 2000, 1e-9) {
		t.Errorf("φ=0.5 compute = %v, want 2 kW", half.ComputePower)
	}
	// ISL shrinks proportionally.
	full, _ := CollaborativeConfig(base, 0, 1)
	if !units.ApproxEqual(float64(half.ISLRate), float64(full.ISLRate)/2, 1e-9) {
		t.Error("φ=0.5 must halve the ISL rate")
	}
}

func TestCollaborativeConfigErrors(t *testing.T) {
	base := core.DefaultConfig(units.KW(4))
	if _, err := CollaborativeConfig(base, 1, 1); err == nil {
		t.Error("φ=1 must error")
	}
	if _, err := CollaborativeConfig(base, 0.5, 0.5); err == nil {
		t.Error("e<1 must error")
	}
}

func TestTCOImprovementMonotoneInFiltering(t *testing.T) {
	base := core.DefaultConfig(units.KW(4))
	prev := 1.0
	for _, phi := range []float64{0, 0.25, 0.5, 2.0 / 3} {
		r, err := TCOImprovement(base, phi, 1)
		if err != nil {
			t.Fatal(err)
		}
		if r < prev-1e-9 {
			t.Errorf("improvement must grow with φ: %.3f at φ=%.2f", r, phi)
		}
		prev = r
	}
}

func TestFig21CloudFilteringImprovementBand(t *testing.T) {
	// Paper: cloud filtering (≈2/3 data reduction) gives 1.74× for the
	// commodity-GPU 4 kW baseline; more efficient architectures gain less
	// (1.33×, 1.31×). We check the GPU point and the ordering.
	base := core.DefaultConfig(units.KW(4))
	gpu, err := TCOImprovement(base, 2.0/3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if gpu < 1.3 || gpu > 2.0 {
		t.Errorf("GPU improvement at φ=2/3 = %.2f, want ≈1.74 (band 1.3-2.0)", gpu)
	}
	global, _ := TCOImprovement(base, 2.0/3, 57.8)
	hetero, _ := TCOImprovement(base, 2.0/3, 116)
	if !(gpu > global && global > hetero) {
		t.Errorf("improvement must fall with efficiency: %.2f %.2f %.2f", gpu, global, hetero)
	}
	if hetero < 1.1 || hetero > 1.6 {
		t.Errorf("hetero improvement = %.2f, want ≈1.31 (band 1.1-1.6)", hetero)
	}
}

func TestTCOImprovementPropagatesErrors(t *testing.T) {
	bad := core.DefaultConfig(units.KW(4))
	bad.Lifetime = 0
	if _, err := TCOImprovement(bad, 0.5, 1); err == nil {
		t.Error("invalid base config must error")
	}
}

func TestImprovementSweepMatchesSerial(t *testing.T) {
	base := core.DefaultConfig(units.KW(4))
	phis := []float64{0, 1.0 / 3, 0.5, 2.0 / 3}
	got, err := ImprovementSweep(base, phis, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, phi := range phis {
		want, err := TCOImprovement(base, phi, 2)
		if err != nil {
			t.Fatal(err)
		}
		if got[i] != want {
			t.Errorf("φ=%.2f: sweep %.6f != serial %.6f", phi, got[i], want)
		}
	}
	if _, err := ImprovementSweep(base, []float64{0.5, 1.5}, 1); err == nil {
		t.Error("out-of-range φ must error")
	}
}
