// Package constellation models Earth-observation constellations served by
// SµDCs: aggregate imaging data demand, the number of SµDCs needed to
// support a constellation (Table III's rightmost column), and the
// collaborative-compute architecture of paper §V, in which EO satellites
// filter data at the edge before offloading to the SµDC (Figs. 19–21).
package constellation

import (
	"errors"
	"fmt"
	"math"

	"sudc/internal/core"
	"sudc/internal/par"
	"sudc/internal/units"
	"sudc/internal/workload"
)

// Constellation is a fleet of EO satellites feeding SµDCs.
type Constellation struct {
	// Satellites is the EO satellite count (the paper sizes for 64).
	Satellites int
	// FramesPerMinute is each satellite's imaging rate (paper: "around six
	// images per minute").
	FramesPerMinute float64
	// FilterRate φ ∈ [0,1) is the fraction of data the EO satellites'
	// edge compute discards before ISL offload (0 = baseline
	// configuration, Fig. 20a; cloud filtering ≈ 2/3, Fig. 20b).
	FilterRate float64
}

// Default64 is the paper's reference constellation: 64 EO satellites at
// six frames per minute with no edge filtering.
var Default64 = Constellation{Satellites: 64, FramesPerMinute: 6}

// Validate reports configuration errors.
func (c Constellation) Validate() error {
	if c.Satellites < 1 {
		return errors.New("constellation: need at least one satellite")
	}
	if c.FramesPerMinute <= 0 {
		return errors.New("constellation: imaging rate must be positive")
	}
	if c.FilterRate < 0 || c.FilterRate >= 1 {
		return fmt.Errorf("constellation: filter rate %v out of [0,1)", c.FilterRate)
	}
	return nil
}

// PixelDemand returns the constellation's post-filtering pixel production
// rate for an app, in pixels/s.
func (c Constellation) PixelDemand(app workload.App) (float64, error) {
	if err := c.Validate(); err != nil {
		return 0, err
	}
	if err := app.Validate(); err != nil {
		return 0, err
	}
	perSat := c.FramesPerMinute / 60 * app.FrameMPixels * 1e6
	return perSat * float64(c.Satellites) * (1 - c.FilterRate), nil
}

// DataDemand returns the aggregate ISL traffic the constellation offers a
// SµDC for an app, after edge filtering.
func (c Constellation) DataDemand(app workload.App) (units.DataRate, error) {
	px, err := c.PixelDemand(app)
	if err != nil {
		return 0, err
	}
	return units.DataRate(px * workload.BitsPerPixel), nil
}

// SuDCsNeeded returns how many SµDCs of the given compute power are needed
// to process the constellation's stream of an app in real time — the
// Table III "# SµDC" column (computed there for 4 kW, RTX 3090, no
// filtering).
func (c Constellation) SuDCsNeeded(app workload.App, sudcPower units.Power) (int, error) {
	demand, err := c.PixelDemand(app)
	if err != nil {
		return 0, err
	}
	capacity, err := app.PixelThroughput(sudcPower)
	if err != nil {
		return 0, err
	}
	if capacity <= 0 {
		return 0, fmt.Errorf("constellation: app %q has no throughput", app.Name)
	}
	n := int(math.Ceil(demand / capacity))
	if n < 1 {
		n = 1
	}
	return n, nil
}

// RequiredComputePower returns the SµDC compute budget that just absorbs
// the constellation's stream for an app at a hardware energy-efficiency
// scalar e (≥1): demand / (kpixel/J × e).
func (c Constellation) RequiredComputePower(app workload.App, e float64) (units.Power, error) {
	if e < 1 {
		return 0, errors.New("constellation: efficiency scalar must be ≥ 1")
	}
	demand, err := c.PixelDemand(app)
	if err != nil {
		return 0, err
	}
	return units.Power(demand / (app.KPixelPerJoule * 1e3) / e), nil
}

// CollaborativeConfig derives the SµDC configuration serving this
// constellation from a zero-filtering baseline config (paper §V): edge
// filtering scales both the compute budget and the ISL capacity by
// (1 − φ); a hardware energy-efficiency scalar e additionally divides the
// compute budget (but not the ISL — the data still has to arrive).
//
// At φ = 0, e = 1 the returned config is the baseline (with its ISL rate
// pinned so later scaling is well-defined).
func CollaborativeConfig(base core.Config, filterRate, e float64) (core.Config, error) {
	if filterRate < 0 || filterRate >= 1 {
		return core.Config{}, fmt.Errorf("constellation: filter rate %v out of [0,1)", filterRate)
	}
	if e < 1 {
		return core.Config{}, errors.New("constellation: efficiency scalar must be ≥ 1")
	}
	out := base
	keep := 1 - filterRate
	out.ComputePower = units.Power(float64(base.ComputePower) * keep / e)
	rate := base.ISLRate
	if rate == 0 {
		rate = core.DesignISLRate(base.ComputePower)
	}
	out.ISLRate = units.DataRate(float64(rate) * keep)
	return out, nil
}

// TCOImprovement returns the baseline-TCO / collaborative-TCO ratio for a
// baseline SµDC config at edge filter rate φ and hardware efficiency
// scalar e (Fig. 21's metric; >1 means the collaborative constellation is
// cheaper).
func TCOImprovement(base core.Config, filterRate, e float64) (float64, error) {
	baseCfg, err := CollaborativeConfig(base, 0, e)
	if err != nil {
		return 0, err
	}
	baseTCO, err := baseCfg.TCO()
	if err != nil {
		return 0, err
	}
	collab, err := CollaborativeConfig(base, filterRate, e)
	if err != nil {
		return 0, err
	}
	collabTCO, err := collab.TCO()
	if err != nil {
		return 0, err
	}
	if collabTCO <= 0 {
		return 0, errors.New("constellation: non-positive collaborative TCO")
	}
	return float64(baseTCO) / float64(collabTCO), nil
}

// ImprovementSweep evaluates TCOImprovement across a filtering-rate grid
// in parallel, returning one improvement factor per φ in input order —
// the sweep behind the paper's Figures 19 and 21.
func ImprovementSweep(base core.Config, filterRates []float64, e float64) ([]float64, error) {
	return par.MapErr(filterRates, func(phi float64) (float64, error) {
		return TCOImprovement(base, phi, e)
	})
}
