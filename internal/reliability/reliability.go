// Package reliability implements the paper's availability and reliability
// models (§VII, §VIII):
//
//   - Near-zero-cost overprovisioning (Figs. 24, 25): compute-node
//     lifetimes are i.i.d. Exp(λ) with MTTF T = 1/λ; Zₙ(t) indicates at
//     least 10 of n nodes alive; Z′ₙ(t) is the powered-node count capped at
//     10. Both are evaluated exactly via the binomial distribution, plus a
//     Monte-Carlo cross-check.
//   - Hardware/software redundancy schemes (Fig. 28): TMR, DMR, and
//     software-based hardening with their power overheads.
//   - The total-ionizing-dose-vs-technology-node dataset (Fig. 26).
//   - A pessimistic soft-error accuracy model for ImageNet ANNs (Fig. 27).
package reliability

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"sudc/internal/par"
)

// SurvivalProb returns the probability a single Exp(1/T) node is still
// alive at time t (both in the same unit, typically multiples of T).
func SurvivalProb(tOverT float64) float64 {
	if tOverT <= 0 {
		return 1
	}
	return math.Exp(-tOverT)
}

// DrawLifetime samples an exponential lifetime with mean mttf (any time
// unit) from the injected RNG — the distribution behind SurvivalProb:
// P(L ≥ t) = SurvivalProb(t/mttf). The fault-injection engine draws
// permanent node deaths from it so discrete-event availability can be
// cross-checked against the closed-form binomial curves here.
func DrawLifetime(rng *rand.Rand, mttf float64) float64 {
	return rng.ExpFloat64() * mttf
}

// logChoose returns log C(n, k).
func logChoose(n, k int) float64 {
	ln1, _ := math.Lgamma(float64(n + 1))
	lk1, _ := math.Lgamma(float64(k + 1))
	lnk1, _ := math.Lgamma(float64(n - k + 1))
	return ln1 - lk1 - lnk1
}

// BinomialPMF returns P(Bin(n,p) = k).
func BinomialPMF(n, k int, p float64) float64 {
	if k < 0 || k > n {
		return 0
	}
	if p <= 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	if p >= 1 {
		if k == n {
			return 1
		}
		return 0
	}
	return math.Exp(logChoose(n, k) +
		float64(k)*math.Log(p) + float64(n-k)*math.Log(1-p))
}

// BinomialTail returns P(Bin(n,p) ≥ k).
func BinomialTail(n, k int, p float64) float64 {
	if k <= 0 {
		return 1
	}
	if k > n {
		return 0
	}
	var sum float64
	for i := k; i <= n; i++ {
		sum += BinomialPMF(n, i, p)
	}
	if sum > 1 {
		sum = 1
	}
	return sum
}

// Availability returns P(Zₙ(t) = 1): the probability that at least `need`
// of n nodes are alive at time t (in units of the MTTF T).
func Availability(n, need int, tOverT float64) (float64, error) {
	if n < 1 || need < 1 {
		return 0, errors.New("reliability: n and need must be ≥ 1")
	}
	if need > n {
		return 0, nil
	}
	if tOverT < 0 {
		return 0, errors.New("reliability: negative time")
	}
	return BinomialTail(n, need, SurvivalProb(tOverT)), nil
}

// MeanAvailability returns the time-averaged availability over a run of
// length h (in units of the MTTF T): (1/h)·∫₀ʰ P(Zₙ(t)=1) dt, evaluated
// by composite Simpson quadrature. It is the analytic anchor for
// DES-measured availability, which is itself a time average over the
// simulated horizon.
func MeanAvailability(n, need int, horizonOverT float64) (float64, error) {
	if n < 1 || need < 1 {
		return 0, errors.New("reliability: n and need must be ≥ 1")
	}
	if horizonOverT <= 0 {
		return 0, errors.New("reliability: horizon must be positive")
	}
	if need > n {
		return 0, nil
	}
	const steps = 512 // even, for Simpson's rule
	h := horizonOverT / steps
	var sum float64
	for i := 0; i <= steps; i++ {
		a, err := Availability(n, need, float64(i)*h)
		if err != nil {
			return 0, err
		}
		switch {
		case i == 0 || i == steps:
			sum += a
		case i%2 == 1:
			sum += 4 * a
		default:
			sum += 2 * a
		}
	}
	return sum * h / 3 / horizonOverT, nil
}

// ExpectedWorking returns E[Z′ₙ(t)] = E[min(cap, #alive)] at time t (in
// units of T).
func ExpectedWorking(n, cap int, tOverT float64) (float64, error) {
	if n < 1 || cap < 1 {
		return 0, errors.New("reliability: n and cap must be ≥ 1")
	}
	if tOverT < 0 {
		return 0, errors.New("reliability: negative time")
	}
	p := SurvivalProb(tOverT)
	var e float64
	for k := 0; k <= n; k++ {
		working := k
		if working > cap {
			working = cap
		}
		e += float64(working) * BinomialPMF(n, k, p)
	}
	// Guard against float accumulation creeping past the cap.
	if e > float64(cap) {
		e = float64(cap)
	}
	return e, nil
}

// TimeToAvailability returns the time (in units of T) at which
// P(Zₙ = 1) first drops to the target probability, found by bisection.
// With target = 0.5 this is the paper's "median time to system
// degradation"; with target = 0.01 it is the time at which "probability of
// system degradation exceeds 99%".
func TimeToAvailability(n, need int, target float64) (float64, error) {
	if target <= 0 || target >= 1 {
		return 0, errors.New("reliability: target must be in (0,1)")
	}
	if need > n {
		return 0, fmt.Errorf("reliability: need %d > n %d", need, n)
	}
	lo, hi := 0.0, 1.0
	for {
		a, err := Availability(n, need, hi)
		if err != nil {
			return 0, err
		}
		if a < target {
			break
		}
		hi *= 2
		if hi > 1e6 {
			return 0, errors.New("reliability: availability never drops to target")
		}
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		a, _ := Availability(n, need, mid)
		if a > target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}

// mcShardTrials fixes how many Monte-Carlo trials share one forked RNG
// stream. The trial→stream mapping depends only on this constant and the
// root seed — never on the worker count — so parallel results are
// reproducible on any machine.
const mcShardTrials = 8192

// simulateTrials runs the Monte-Carlo inner loop against a caller-owned
// RNG, returning the raw counters.
func simulateTrials(rng *rand.Rand, n, need int, tOverT float64, trials int) (okCount int, sum float64) {
	for i := 0; i < trials; i++ {
		alive := 0
		for j := 0; j < n; j++ {
			// Exp(1) lifetime ≥ t ⟺ uniform draw < e^{-t}.
			if rng.ExpFloat64() >= tOverT {
				alive++
			}
		}
		if alive >= need {
			okCount++
		}
		if alive > need {
			alive = need
		}
		sum += float64(alive)
	}
	return okCount, sum
}

// SimulateRand runs a serial Monte-Carlo estimate of (availability,
// expected working capped at `need`) at time t, drawing all trials from
// the injected RNG. Callers that need parallel throughput should use
// Simulate, which shards trials over forked streams.
func SimulateRand(rng *rand.Rand, n, need int, tOverT float64, trials int) (avail, expWorking float64, err error) {
	if n < 1 || need < 1 || trials < 1 {
		return 0, 0, errors.New("reliability: n, need and trials must be ≥ 1")
	}
	if rng == nil {
		return 0, 0, errors.New("reliability: nil rng")
	}
	okCount, sum := simulateTrials(rng, n, need, tOverT, trials)
	return float64(okCount) / float64(trials), sum / float64(trials), nil
}

// Simulate runs a Monte-Carlo estimate of (availability, expected working
// capped at `need`) at time t, with trials independent draws, using the
// given seed. Trials are sharded over per-shard RNG streams forked from
// the seed and evaluated in parallel; the result is identical for any
// worker count. It cross-validates the exact formulas.
func Simulate(n, need int, tOverT float64, trials int, seed int64) (avail, expWorking float64, err error) {
	if n < 1 || need < 1 || trials < 1 {
		return 0, 0, errors.New("reliability: n, need and trials must be ≥ 1")
	}
	type partial struct {
		ok  int
		sum float64
	}
	nShards := (trials + mcShardTrials - 1) / mcShardTrials
	parts := make([]partial, nShards)
	par.ForN(nShards, func(s int) {
		t := mcShardTrials
		if s == nShards-1 {
			t = trials - s*mcShardTrials
		}
		ok, sum := simulateTrials(par.ForkRand(seed, s), n, need, tOverT, t)
		parts[s] = partial{ok: ok, sum: sum}
	})
	okCount := 0
	var sum float64
	for _, p := range parts {
		okCount += p.ok
		sum += p.sum
	}
	return float64(okCount) / float64(trials), sum / float64(trials), nil
}

// Scheme is a redundancy strategy with its power overhead (Fig. 28).
type Scheme struct {
	Name string
	// PowerOverhead multiplies the equivalent computing power: a DMR
	// scheme at 2 kW equivalent consumes ~4 kW.
	PowerOverhead float64
}

// The paper's three schemes.
var (
	// TMR is triple modular redundancy (3× overhead).
	TMR = Scheme{Name: "TMR", PowerOverhead: 3}
	// DMR is dual modular redundancy (2× overhead).
	DMR = Scheme{Name: "DMR", PowerOverhead: 2}
	// SoftwareHardening is ANN-aware software redundancy (20% overhead,
	// which the paper calls conservative).
	SoftwareHardening = Scheme{Name: "software", PowerOverhead: 1.2}
	// NoRedundancy is the unprotected baseline.
	NoRedundancy = Scheme{Name: "none", PowerOverhead: 1}
)

// Schemes returns the redundancy options in the paper's Figure 28 order.
func Schemes() []Scheme { return []Scheme{TMR, DMR, SoftwareHardening} }

// TIDRecord is one datapoint of Figure 26: the total ionizing dose a
// commercial processor tolerated before failure in published testing
// ([34], [36], [44], [74], [79]).
type TIDRecord struct {
	Processor string
	// TechNodeNm is the manufacturing node in nanometers.
	TechNodeNm float64
	// ToleranceKrad is the dose at failure, krad(Si); for NoFailure
	// records it is the highest dose tested without failure.
	ToleranceKrad float64
	// NoFailure marks censored records (tested to ToleranceKrad without
	// failing — Intel Broadwell and AMD Llano in the paper).
	NoFailure bool
}

// TIDDataset returns Figure 26's datapoints, oldest node first.
func TIDDataset() []TIDRecord {
	return []TIDRecord{
		{Processor: "Intel 80386 (MQ80386)", TechNodeNm: 1500, ToleranceKrad: 8},
		{Processor: "Intel 80486DX2-66", TechNodeNm: 800, ToleranceKrad: 12},
		{Processor: "Intel Pentium III", TechNodeNm: 250, ToleranceKrad: 50},
		{Processor: "AMD K7", TechNodeNm: 180, ToleranceKrad: 65},
		{Processor: "AMD Llano", TechNodeNm: 32, ToleranceKrad: 1000, NoFailure: true},
		{Processor: "Intel 14nm SoC", TechNodeNm: 14, ToleranceKrad: 500, NoFailure: true},
	}
}

// SoftErrorNetwork is one ImageNet classifier in Figure 27.
type SoftErrorNetwork struct {
	Name string
	// BaselineTop1 is the fault-free ImageNet top-1 accuracy.
	BaselineTop1 float64
	// CriticalBits is the effective number of architecturally-critical
	// state bits exposed per inference (weights resident in SRAM plus
	// in-flight activations), in Mbit.
	CriticalBitsMbit float64
	// InferenceSeconds is the single-image inference latency used to turn
	// a flux into a per-inference upset probability.
	InferenceSeconds float64
}

// SoftErrorSuite returns the Figure 27 networks.
func SoftErrorSuite() []SoftErrorNetwork {
	return []SoftErrorNetwork{
		{Name: "resnet-50", BaselineTop1: 0.761, CriticalBitsMbit: 816, InferenceSeconds: 0.004},
		{Name: "vgg-16", BaselineTop1: 0.715, CriticalBitsMbit: 4424, InferenceSeconds: 0.007},
		{Name: "inception-v3", BaselineTop1: 0.774, CriticalBitsMbit: 764, InferenceSeconds: 0.005},
		{Name: "densenet-121", BaselineTop1: 0.745, CriticalBitsMbit: 256, InferenceSeconds: 0.006},
		{Name: "mobilenet-v2", BaselineTop1: 0.718, CriticalBitsMbit: 112, InferenceSeconds: 0.002},
	}
}

// AccuracyUnderFlux returns the expected ImageNet accuracy at the given
// upset flux (upsets per Mbit per second), under the paper's pessimistic
// assumptions: every soft error flips the inference to incorrect, and no
// soft error ever corrects one.
func (n SoftErrorNetwork) AccuracyUnderFlux(upsetsPerMbitSecond float64) (float64, error) {
	if upsetsPerMbitSecond < 0 {
		return 0, errors.New("reliability: negative flux")
	}
	lambda := upsetsPerMbitSecond * n.CriticalBitsMbit * n.InferenceSeconds
	return n.BaselineTop1 * math.Exp(-lambda), nil
}
