package reliability

import (
	"math"
	"testing"
)

// FuzzBinomialPMF checks numeric stability of the log-gamma PMF on
// arbitrary (n, k, p): every value must be a probability in [0, 1], and
// for valid p the distribution must sum to 1 within 1e-9.
func FuzzBinomialPMF(f *testing.F) {
	f.Add(10, 4, 0.5)
	f.Add(0, 0, 0.0)
	f.Add(350, 175, 1e-12)
	f.Add(7, -3, 0.99)
	f.Fuzz(func(t *testing.T, n, k int, p float64) {
		if math.IsNaN(p) {
			t.Skip()
		}
		if n < 0 {
			n = -n
		}
		n %= 400 // keep the sum check fast; stability is size-independent
		v := BinomialPMF(n, k, p)
		if math.IsNaN(v) || v < 0 || v > 1 {
			t.Fatalf("BinomialPMF(%d, %d, %v) = %v out of [0,1]", n, k, p, v)
		}
		if p < 0 || p > 1 {
			return
		}
		var sum float64
		for i := 0; i <= n; i++ {
			sum += BinomialPMF(n, i, p)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("PMF(n=%d, p=%v) sums to %v, want 1 ± 1e-9", n, p, sum)
		}
	})
}

// FuzzBinomialTail checks tail probabilities stay in [0, 1], that the
// k ≤ 0 tail is exactly 1, and that the tail is non-increasing in k.
func FuzzBinomialTail(f *testing.F) {
	f.Add(10, 4, 0.5)
	f.Add(64, 10, 0.999)
	f.Add(3, 9, 0.1)
	f.Fuzz(func(t *testing.T, n, k int, p float64) {
		if math.IsNaN(p) {
			t.Skip()
		}
		if n < 0 {
			n = -n
		}
		n %= 400
		v := BinomialTail(n, k, p)
		if math.IsNaN(v) || v < 0 || v > 1 {
			t.Fatalf("BinomialTail(%d, %d, %v) = %v out of [0,1]", n, k, p, v)
		}
		if got := BinomialTail(n, 0, p); got != 1 {
			t.Fatalf("BinomialTail(%d, 0, %v) = %v, want exactly 1", n, p, got)
		}
		if p < 0 || p > 1 {
			return
		}
		prev := 1.0
		for i := 0; i <= n+1; i++ {
			tail := BinomialTail(n, i, p)
			if tail > prev+1e-12 {
				t.Fatalf("tail must be non-increasing in k: P(≥%d)=%v > P(≥%d)=%v", i, tail, i-1, prev)
			}
			prev = tail
		}
	})
}
