package reliability

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sudc/internal/par"
	"sudc/internal/units"
)

func TestSurvivalProb(t *testing.T) {
	if SurvivalProb(0) != 1 {
		t.Error("survival at t=0 must be 1")
	}
	if got := SurvivalProb(1); !units.ApproxEqual(got, math.Exp(-1), 1e-12) {
		t.Errorf("survival at T = %v, want 1/e", got)
	}
	if SurvivalProb(-1) != 1 {
		t.Error("negative time clamps to 1")
	}
}

func TestBinomialPMFSumsToOne(t *testing.T) {
	for _, p := range []float64{0, 0.2, 0.5, 0.9, 1} {
		var sum float64
		for k := 0; k <= 30; k++ {
			sum += BinomialPMF(30, k, p)
		}
		if !units.ApproxEqual(sum, 1, 1e-9) {
			t.Errorf("PMF at p=%v sums to %v", p, sum)
		}
	}
}

func TestBinomialPMFEdges(t *testing.T) {
	if BinomialPMF(10, -1, 0.5) != 0 || BinomialPMF(10, 11, 0.5) != 0 {
		t.Error("out-of-range k must be 0")
	}
	if BinomialPMF(10, 0, 0) != 1 || BinomialPMF(10, 10, 1) != 1 {
		t.Error("degenerate p must concentrate mass")
	}
}

func TestBinomialTail(t *testing.T) {
	// Bin(4, 0.5): P(≥2) = 11/16.
	if got := BinomialTail(4, 2, 0.5); !units.ApproxEqual(got, 11.0/16, 1e-12) {
		t.Errorf("P(Bin(4,.5)≥2) = %v, want 11/16", got)
	}
	if BinomialTail(4, 0, 0.3) != 1 {
		t.Error("tail at k=0 must be 1")
	}
	if BinomialTail(4, 5, 0.3) != 0 {
		t.Error("tail beyond n must be 0")
	}
}

func TestAvailabilityNoOverprovisioning(t *testing.T) {
	// With n = need = 10, availability is e^{-10t/T}.
	got, err := Availability(10, 10, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Exp(-1)
	if !units.ApproxEqual(got, want, 1e-9) {
		t.Errorf("availability = %v, want %v", got, want)
	}
}

func TestAvailabilityErrors(t *testing.T) {
	if _, err := Availability(0, 1, 1); err == nil {
		t.Error("n=0 must error")
	}
	if _, err := Availability(10, 10, -1); err == nil {
		t.Error("negative time must error")
	}
	v, err := Availability(5, 10, 1)
	if err != nil || v != 0 {
		t.Error("need > n must give zero availability")
	}
}

func TestPaper99PercentDegradationTimes(t *testing.T) {
	// Paper §VII: "the time at which probability of system degradation
	// exceeds 99% ... 0.46, 1.43, and 1.89 for n = 10, 20, and 30".
	tests := []struct {
		n    int
		want float64
	}{
		{10, 0.46}, {20, 1.43}, {30, 1.89},
	}
	for _, tt := range tests {
		got, err := TimeToAvailability(tt.n, 10, 0.01)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-tt.want) > 0.03 {
			t.Errorf("n=%d: t(1%%) = %.3f T, want %.2f", tt.n, got, tt.want)
		}
	}
}

func TestMedianDegradationGrowsSuperlinearly(t *testing.T) {
	// Paper: "the median time to system degradation increases
	// superlinearly with overprovisioning factor".
	m10, _ := TimeToAvailability(10, 10, 0.5)
	m20, _ := TimeToAvailability(20, 10, 0.5)
	m30, _ := TimeToAvailability(30, 10, 0.5)
	if !(m20 > 2*m10) {
		t.Errorf("median(20)=%.3f should exceed 2×median(10)=%.3f", m20, 2*m10)
	}
	if !(m30 > m20 && m20 > m10) {
		t.Errorf("medians must increase: %v %v %v", m10, m20, m30)
	}
}

func TestTimeToAvailabilityErrors(t *testing.T) {
	if _, err := TimeToAvailability(10, 10, 0); err == nil {
		t.Error("target 0 must error")
	}
	if _, err := TimeToAvailability(10, 10, 1); err == nil {
		t.Error("target 1 must error")
	}
	if _, err := TimeToAvailability(5, 10, 0.5); err == nil {
		t.Error("need > n must error")
	}
}

func TestExpectedWorking(t *testing.T) {
	// At t=0 all n nodes work; capped at 10.
	e, err := ExpectedWorking(30, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !units.ApproxEqual(e, 10, 1e-12) {
		t.Errorf("E at t=0 = %v, want 10 (capped)", e)
	}
	// Without cap binding: n=10 at time t, E = 10·e^{-t}.
	e2, _ := ExpectedWorking(10, 10, 0.5)
	want := 10 * math.Exp(-0.5)
	if !units.ApproxEqual(e2, want, 1e-9) {
		t.Errorf("E = %v, want %v", e2, want)
	}
	if _, err := ExpectedWorking(0, 10, 1); err == nil {
		t.Error("n=0 must error")
	}
	if _, err := ExpectedWorking(10, 10, -1); err == nil {
		t.Error("negative time must error")
	}
}

func TestOverprovisioningImprovesEverything(t *testing.T) {
	// More spares help at every time (Figs. 24 & 25).
	for _, tt := range []float64{0.25, 0.5, 1, 1.5} {
		a10, _ := Availability(10, 10, tt)
		a20, _ := Availability(20, 10, tt)
		a30, _ := Availability(30, 10, tt)
		if !(a30 > a20 && a20 > a10) {
			t.Errorf("t=%v: availability not monotone in n: %v %v %v", tt, a10, a20, a30)
		}
		e10, _ := ExpectedWorking(10, 10, tt)
		e30, _ := ExpectedWorking(30, 10, tt)
		if e30 <= e10 {
			t.Errorf("t=%v: expected working not monotone in n", tt)
		}
	}
}

func TestSimulateMatchesExact(t *testing.T) {
	const trials = 200000
	for _, tc := range []struct {
		n int
		t float64
	}{{10, 0.25}, {20, 0.8}, {30, 1.25}} {
		simA, simE, err := Simulate(tc.n, 10, tc.t, trials, 42)
		if err != nil {
			t.Fatal(err)
		}
		exactA, _ := Availability(tc.n, 10, tc.t)
		exactE, _ := ExpectedWorking(tc.n, 10, tc.t)
		if math.Abs(simA-exactA) > 0.01 {
			t.Errorf("n=%d t=%v: MC availability %.4f vs exact %.4f", tc.n, tc.t, simA, exactA)
		}
		if math.Abs(simE-exactE) > 0.05 {
			t.Errorf("n=%d t=%v: MC expectation %.3f vs exact %.3f", tc.n, tc.t, simE, exactE)
		}
	}
}

func TestSimulateErrors(t *testing.T) {
	if _, _, err := Simulate(0, 1, 1, 10, 1); err == nil {
		t.Error("n=0 must error")
	}
	if _, _, err := Simulate(10, 10, 1, 0, 1); err == nil {
		t.Error("zero trials must error")
	}
}

func TestSchemes(t *testing.T) {
	s := Schemes()
	if len(s) != 3 {
		t.Fatal("want 3 schemes")
	}
	if TMR.PowerOverhead != 3 || DMR.PowerOverhead != 2 {
		t.Error("paper overheads: TMR 3×, DMR 2×")
	}
	if !units.ApproxEqual(SoftwareHardening.PowerOverhead, 1.2, 1e-12) {
		t.Error("software overhead 20%")
	}
	if NoRedundancy.PowerOverhead != 1 {
		t.Error("baseline overhead 1×")
	}
}

func TestTIDDatasetShape(t *testing.T) {
	ds := TIDDataset()
	if len(ds) < 5 {
		t.Fatal("dataset too small")
	}
	// Tolerance broadly improves as tech node shrinks (the Fig. 26 trend).
	first, last := ds[0], ds[len(ds)-1]
	if first.TechNodeNm <= last.TechNodeNm {
		t.Error("dataset must be ordered oldest node first")
	}
	if last.ToleranceKrad <= first.ToleranceKrad {
		t.Error("modern nodes must tolerate more dose")
	}
	// Paper: "At 14 nm tech node, processors can tolerate an order of
	// magnitude more radiation than ... an LEO satellite's lifetime"
	// (5 yr × 0.5 krad/yr = 2.5 krad).
	for _, r := range ds {
		if r.TechNodeNm <= 32 && r.ToleranceKrad < 25 {
			t.Errorf("%s: tolerance %v krad too low for the paper's claim", r.Processor, r.ToleranceKrad)
		}
	}
	// Censoring flags on the two no-failure parts.
	var censored int
	for _, r := range ds {
		if r.NoFailure {
			censored++
		}
	}
	if censored != 2 {
		t.Errorf("want 2 censored records (Broadwell-class 14nm, Llano), have %d", censored)
	}
}

func TestSoftErrorModel(t *testing.T) {
	suite := SoftErrorSuite()
	if len(suite) != 5 {
		t.Fatal("want 5 networks")
	}
	for _, n := range suite {
		// Zero flux → baseline accuracy.
		a0, err := n.AccuracyUnderFlux(0)
		if err != nil {
			t.Fatal(err)
		}
		if a0 != n.BaselineTop1 {
			t.Errorf("%s: zero-flux accuracy %v != baseline %v", n.Name, a0, n.BaselineTop1)
		}
		// Monotone decreasing in flux.
		a1, _ := n.AccuracyUnderFlux(1)
		a10, _ := n.AccuracyUnderFlux(10)
		if !(a1 < a0 && a10 < a1) {
			t.Errorf("%s: accuracy must fall with flux", n.Name)
		}
		if _, err := n.AccuracyUnderFlux(-1); err == nil {
			t.Error("negative flux must error")
		}
	}
	// Bigger networks expose more critical bits: VGG-16 degrades faster
	// than MobileNet-V2 at the same flux.
	var vgg, mob SoftErrorNetwork
	for _, n := range suite {
		switch n.Name {
		case "vgg-16":
			vgg = n
		case "mobilenet-v2":
			mob = n
		}
	}
	av, _ := vgg.AccuracyUnderFlux(0.1)
	am, _ := mob.AccuracyUnderFlux(0.1)
	if av/vgg.BaselineTop1 >= am/mob.BaselineTop1 {
		t.Error("VGG-16 must lose relatively more accuracy than MobileNet-V2")
	}
}

func TestAvailabilityMonotoneDecreasingInTime(t *testing.T) {
	f := func(raw uint8) bool {
		tt := float64(raw) / 100
		a1, err1 := Availability(20, 10, tt)
		a2, err2 := Availability(20, 10, tt+0.05)
		if err1 != nil || err2 != nil {
			return false
		}
		return a2 <= a1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestExpectedWorkingBounds(t *testing.T) {
	f := func(rawN, rawT uint8) bool {
		n := int(rawN)%40 + 10
		tt := float64(rawT) / 50
		e, err := ExpectedWorking(n, 10, tt)
		if err != nil {
			return false
		}
		return e >= 0 && e <= 10
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSimulateInvariantUnderWorkerCount(t *testing.T) {
	// The trial→stream mapping is fixed by the seed and shard size, so
	// the estimate is bit-identical for any worker count.
	refA, refE, err := Simulate(20, 10, 0.8, 50000, 42)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 2, 8} {
		prev := par.SetDefaultWorkers(w)
		a, e, err := Simulate(20, 10, 0.8, 50000, 42)
		par.SetDefaultWorkers(prev)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if a != refA || e != refE {
			t.Errorf("workers=%d: (%.6f, %.6f) differs from (%.6f, %.6f)", w, a, e, refA, refE)
		}
	}
}

func TestSimulateRand(t *testing.T) {
	a1, e1, err := SimulateRand(rand.New(rand.NewSource(7)), 20, 10, 0.8, 20000)
	if err != nil {
		t.Fatal(err)
	}
	a2, e2, err := SimulateRand(rand.New(rand.NewSource(7)), 20, 10, 0.8, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 || e1 != e2 {
		t.Error("SimulateRand with identical streams must be deterministic")
	}
	exact, _ := Availability(20, 10, 0.8)
	if math.Abs(a1-exact) > 0.02 {
		t.Errorf("SimulateRand availability %.4f vs exact %.4f", a1, exact)
	}
	if _, _, err := SimulateRand(nil, 20, 10, 0.8, 10); err == nil {
		t.Error("nil rng must error")
	}
}

func TestDrawLifetimeMatchesSurvivalProb(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const n, mttf = 20000, 3.0
	var sum float64
	surviving := 0
	for i := 0; i < n; i++ {
		l := DrawLifetime(rng, mttf)
		if l < 0 {
			t.Fatal("negative lifetime")
		}
		sum += l
		if l >= mttf {
			surviving++
		}
	}
	if mean := sum / n; math.Abs(mean-mttf) > 0.1 {
		t.Errorf("mean lifetime %.3f, want ≈%.1f", mean, mttf)
	}
	// P(L ≥ T) = SurvivalProb(1) = 1/e.
	if got, want := float64(surviving)/n, SurvivalProb(1); math.Abs(got-want) > 0.02 {
		t.Errorf("survival at t=T: %.3f, want ≈%.3f", got, want)
	}
}

func TestMeanAvailability(t *testing.T) {
	// need > n: no availability at all.
	if a, err := MeanAvailability(3, 5, 1); err != nil || a != 0 {
		t.Errorf("need > n: got (%v, %v), want (0, nil)", a, err)
	}
	// Single node, need 1: (1/h)∫₀ʰ e^{-t} dt = (1 − e^{-h})/h.
	h := 0.5
	got, err := MeanAvailability(1, 1, h)
	if err != nil {
		t.Fatal(err)
	}
	want := (1 - math.Exp(-h)) / h
	if math.Abs(got-want) > 1e-6 {
		t.Errorf("MeanAvailability(1,1,%v) = %.8f, want %.8f", h, got, want)
	}
	// Monotone in n: every spare raises the time average.
	prev := 0.0
	for n := 4; n <= 8; n++ {
		a, err := MeanAvailability(n, 4, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		if a <= prev {
			t.Errorf("n=%d: mean availability %.4f must exceed n=%d's %.4f", n, a, n-1, prev)
		}
		if a > 1 {
			t.Errorf("n=%d: mean availability %v > 1", n, a)
		}
		prev = a
	}
	// A shorter horizon averages over healthier times.
	short, _ := MeanAvailability(4, 4, 0.1)
	long, _ := MeanAvailability(4, 4, 2)
	if short <= long {
		t.Errorf("shorter horizon must average higher: %.4f vs %.4f", short, long)
	}
}

func TestMeanAvailabilityErrors(t *testing.T) {
	if _, err := MeanAvailability(0, 1, 1); err == nil {
		t.Error("n < 1 must error")
	}
	if _, err := MeanAvailability(4, 0, 1); err == nil {
		t.Error("need < 1 must error")
	}
	if _, err := MeanAvailability(4, 2, 0); err == nil {
		t.Error("zero horizon must error")
	}
	if _, err := MeanAvailability(4, 2, -1); err == nil {
		t.Error("negative horizon must error")
	}
}
