// Package core implements the paper's primary contribution: the SµDC
// (Space Microdatacenter) design and TCO model. Given a compute power
// budget and an architecture, it closes the physical design — compute
// fleet, FSO inter-satellite links, active thermal control, solar power,
// attitude control, propulsion, structure — through a fixed-point mass
// iteration, then prices the result with the SSCM-style CER model.
//
// The closure captures the couplings the paper identifies as the reason
// power dominates SµDC TCO: compute power raises heat load, which raises
// heat-pump power, which raises array power and mass, which raises dry
// mass, which raises fuel, ADCS and structure mass, which raises launch
// and subsystem cost.
package core

import (
	"errors"
	"fmt"
	"math"

	"sudc/internal/adcs"
	"sudc/internal/compress"
	"sudc/internal/fso"
	"sudc/internal/hardware"
	"sudc/internal/orbit"
	"sudc/internal/par"
	"sudc/internal/propulsion"
	"sudc/internal/solar"
	"sudc/internal/sscm"
	"sudc/internal/thermal"
	"sudc/internal/units"
	"sudc/internal/workload"
)

// Config describes a SµDC to design and price.
type Config struct {
	// ComputePower is the end-of-life electrical budget for the compute
	// payload (the paper's primary design variable, 0.5–10 kW).
	ComputePower units.Power
	// Server is the compute architecture filling that budget.
	Server hardware.Server
	// Orbit the SµDC flies in.
	Orbit orbit.Orbit
	// Lifetime is the design mission duration (paper default: 5 years).
	Lifetime units.Years
	// ISLRate is the aggregate FSO capacity to install. Zero means
	// auto-size for the design workload (see DesignISLRate).
	ISLRate units.DataRate
	// OmitISL builds the satellite with no optical link at all — the
	// zero-communication baseline of the paper's Figure 7.
	OmitISL bool
	// ISLLink is the optical inter-satellite-link technology.
	ISLLink fso.Link
	// Compression applied to imagery before the ISL (reduces the installed
	// rate; decode power excluded as in the paper's upper-bound analysis
	// unless IncludeDecodePower is set).
	Compression compress.Algorithm
	// IncludeDecodePower charges the receiver-side decompression power to
	// the payload — the refinement the paper's Figure 10 deliberately
	// omits ("these are upper bounds on the possible TCO improvements").
	IncludeDecodePower bool
	// Radiator and HeatPump define the thermal subsystem. PassiveThermal
	// drops the heat pump: the radiator runs at the cold-plate temperature
	// and grows by the T⁴ law instead.
	Radiator       thermal.Radiator
	HeatPump       thermal.HeatPump
	PassiveThermal bool
	// Solar is the EPS technology set (orbit/lifetime fields are
	// overwritten from this config). RTG, if non-nil, replaces the solar
	// EPS with a radioisotope generator (the paper's "nuclear batteries
	// for distant missions" option [63]).
	Solar solar.Config
	RTG   *solar.RTG
	// ADCS configuration.
	ADCS adcs.Config
	// Thruster technology for station-keeping and deorbit.
	Thruster propulsion.Thruster
	// AvionicsPower is the fixed bus housekeeping draw (C&DH, TT&C,
	// heaters) excluding ADCS, which is sized separately.
	AvionicsPower units.Power
	// CostModel prices the closed design.
	CostModel sscm.Model
}

// DefaultConfig returns the paper's reference design at the given compute
// power: RTX 3090 servers, CONDOR-class ISL auto-sized for the design
// workload, 550 km orbit, 5-year lifetime, SSCM-SµDC costing.
func DefaultConfig(computePower units.Power) Config {
	return Config{
		ComputePower:  computePower,
		Server:        hardware.DefaultServer(hardware.RTX3090),
		Orbit:         orbit.DefaultEO,
		Lifetime:      5,
		ISLLink:       fso.CondorClass,
		Compression:   compress.None,
		Radiator:      thermal.DefaultRadiator,
		HeatPump:      thermal.DefaultHeatPump,
		Solar:         solar.DefaultConfig(),
		ADCS:          adcs.DefaultConfig(),
		Thruster:      propulsion.Monopropellant,
		AvionicsPower: 70,
		CostModel:     sscm.Reference(),
	}
}

// DesignISLRate returns the ISL capacity the reference designs install for
// a compute budget: the saturation rate of the geometric-mean workload
// (pixel throughput × bits/pixel over the Table III suite).
func DesignISLRate(budget units.Power) units.DataRate {
	if budget <= 0 {
		return 0
	}
	var logSum float64
	for _, a := range workload.Suite {
		logSum += math.Log(a.KPixelPerJoule)
	}
	geo := math.Exp(logSum / float64(len(workload.Suite)))
	return units.DataRate(float64(budget) * geo * 1e3 * workload.BitsPerPixel)
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.ComputePower <= 0 {
		return errors.New("core: compute power must be positive")
	}
	if c.Lifetime <= 0 {
		return errors.New("core: lifetime must be positive")
	}
	if c.Server.Device.TDP <= 0 {
		return fmt.Errorf("core: server device %q has no TDP", c.Server.Device.Name)
	}
	if c.Server.SpecificPower <= 0 {
		return errors.New("core: server needs positive specific power")
	}
	if err := c.Orbit.Validate(); err != nil {
		return err
	}
	if err := c.ADCS.Validate(); err != nil {
		return err
	}
	if c.Compression.Name != "" {
		if err := c.Compression.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Design is a closed (mass-converged) SµDC physical design.
type Design struct {
	Config Config

	// Compute payload (continuously sized: the budget is fully allocated).
	ComputePower units.Power
	ComputeMass  units.Mass
	ComputeCost  units.Dollars

	// ISL is the sized optical link subsystem; InstalledISLRate is the
	// post-compression capacity actually installed.
	ISL              fso.Design
	InstalledISLRate units.DataRate

	// Thermal, EPS, ADCS, Propulsion are the sized subsystems.
	Thermal    thermal.Design
	EPS        solar.Design
	ADCS       adcs.Design
	Propulsion propulsion.Design

	// StructureMass, CDHMass, TTCMass complete the bus.
	StructureMass units.Mass
	CDHMass       units.Mass
	TTCMass       units.Mass

	// EOLPower is the total end-of-life electrical load.
	EOLPower units.Power
	// DryMass and WetMass are the converged satellite masses.
	DryMass units.Mass
	WetMass units.Mass

	// Drivers are the cost-model inputs derived from the design.
	Drivers sscm.Drivers
}

// Bus sizing constants.
const (
	// structureFraction is primary+secondary structure as a fraction of
	// dry mass (standard smallsat budget).
	structureFraction = 0.20
	// cdhBaseMass and cdhMassPerMbps size the C&DH unit.
	cdhBaseMass    = 12.0
	cdhMassPerMbps = 0.02
	// ttcMass is the fixed TT&C transponder/antenna mass.
	ttcMass = 10.0
	// massTolerance ends the fixed-point iteration (kg).
	massTolerance = 1e-4
	maxIterations = 200
)

// Build closes the design: it iterates the mass/power couplings to a fixed
// point and returns the converged physical design with its cost drivers.
func (c Config) Build() (Design, error) {
	if err := c.Validate(); err != nil {
		return Design{}, err
	}

	// Compute payload: continuous sizing so TCO curves are smooth in the
	// budget (the paper's curves treat power as a continuous variable).
	computeMass := c.Server.SpecificPower.MassFor(c.ComputePower)
	perDevice := float64(c.Server.Device.TDP)
	computeCost := units.Dollars(float64(c.ComputePower) / perDevice *
		float64(c.Server.Device.Price) * c.Server.IntegrationCostFactor)

	// ISL: auto-size if unset, then shrink by compression.
	rate := c.ISLRate
	if rate == 0 {
		rate = DesignISLRate(c.ComputePower)
	}
	if c.OmitISL {
		rate = 0
	}
	if c.Compression.Name != "" && c.Compression.Ratio > 1 {
		var err error
		rate, err = c.Compression.CompressedRate(rate)
		if err != nil {
			return Design{}, err
		}
	}
	isl, err := fso.Size(c.ISLLink, rate)
	if err != nil {
		return Design{}, err
	}

	payloadPower := c.ComputePower + isl.Power
	if c.IncludeDecodePower && c.Compression.Name != "" && !c.OmitISL {
		// Decode power is charged on the raw (decoded) stream.
		raw := c.ISLRate
		if raw == 0 {
			raw = DesignISLRate(c.ComputePower)
		}
		payloadPower += c.Compression.DecodePower(raw)
	}

	solarCfg := c.Solar
	solarCfg.Orbit = c.Orbit
	solarCfg.Lifetime = c.Lifetime

	xband := fso.XBandEquivalent(c.ISLLink, rate)
	cdhMass := units.Mass(cdhBaseMass + cdhMassPerMbps*float64(xband)/1e6)

	// Fixed-point iteration over dry mass: ADCS power and propellant both
	// depend on the dry mass they help create.
	var (
		dry        = units.Mass(300) // starting guess
		th         thermal.Design
		eps        solar.Design
		ad         adcs.Design
		prop       propulsion.Design
		structMass units.Mass
		eol        units.Power
		converged  bool
	)
	budget := c.Orbit.BudgetFor(c.Lifetime)
	dv := budget.Total(c.Lifetime)

	for i := 0; i < maxIterations; i++ {
		ad, err = adcs.Size(c.ADCS, dry)
		if err != nil {
			return Design{}, err
		}
		busPower := c.AvionicsPower + ad.Power
		heatLoad := payloadPower + busPower

		if c.PassiveThermal {
			th, err = thermal.SizePassive(heatLoad, c.Radiator, c.HeatPump.Cold)
		} else {
			th, err = thermal.Size(heatLoad, c.Radiator, c.HeatPump)
		}
		if err != nil {
			return Design{}, err
		}
		eol = heatLoad + th.PumpPower

		if c.RTG != nil {
			eps, err = solar.SizeRTG(*c.RTG, eol, c.Lifetime)
		} else {
			eps, err = solarCfg.Size(eol)
		}
		if err != nil {
			return Design{}, err
		}

		prop, err = propulsion.Size(c.Thruster, dry, dv)
		if err != nil {
			return Design{}, err
		}

		// Structure is a fraction of dry mass: solve
		// dry = other + structureFraction·dry.
		other := computeMass + isl.Mass + th.TotalMass() + eps.TotalMass() +
			ad.Mass + cdhMass + units.Mass(ttcMass) + prop.DryMass
		newDry := other / (1 - structureFraction)
		structMass = newDry - other

		if math.Abs(float64(newDry-dry)) < massTolerance {
			dry = newDry
			converged = true
			break
		}
		dry = newDry
	}
	if !converged {
		return Design{}, errors.New("core: mass iteration did not converge")
	}

	wet := dry + prop.Propellant

	// Pump share of BOL power for the SSCM/SEER accounting split.
	pumpBOL := 0.0
	if eol > 0 {
		pumpBOL = float64(eps.BOLArrayPower) * float64(th.PumpPower) / float64(eol)
	}

	extraPowerHW := 0.0
	if c.RTG != nil {
		extraPowerHW = float64(eps.HardwareCost)
	}

	d := Design{
		Config:           c,
		ComputePower:     c.ComputePower,
		ComputeMass:      computeMass,
		ComputeCost:      computeCost,
		ISL:              isl,
		InstalledISLRate: rate,
		Thermal:          th,
		EPS:              eps,
		ADCS:             ad,
		Propulsion:       prop,
		StructureMass:    structMass,
		CDHMass:          cdhMass,
		TTCMass:          units.Mass(ttcMass),
		EOLPower:         eol,
		DryMass:          dry,
		WetMass:          wet,
		Drivers: sscm.Drivers{
			BOLPower:               float64(eps.BOLArrayPower),
			ExtraPowerHardwareCost: extraPowerHW,
			PumpBOLPower:           pumpBOL,
			ThermalMass:            float64(th.TotalMass()),
			StructureMass:          float64(structMass),
			ADCSMass:               float64(ad.Mass),
			PropulsionWetMass:      float64(prop.WetMass()),
			CDHRateMbps:            float64(xband) / 1e6,
			ComputeHardwareCost:    float64(computeCost),
			ComputeMass:            float64(computeMass),
			ISLHardwareCost:        float64(isl.HardwareCost),
			ISLMass:                float64(isl.Mass),
			DryMass:                float64(dry),
			WetMass:                float64(wet),
			Lifetime:               c.Lifetime,
		},
	}
	return d, nil
}

// Cost prices the design with its configured cost model.
func (d Design) Cost() (sscm.Breakdown, error) {
	return d.Config.CostModel.Estimate(d.Drivers)
}

// TCO builds and prices the configuration, returning the first-unit total
// cost of ownership.
func (c Config) TCO() (units.Dollars, error) {
	b, err := c.Breakdown()
	if err != nil {
		return 0, err
	}
	return b.TCO(), nil
}

// Breakdown builds and prices the configuration.
func (c Config) Breakdown() (sscm.Breakdown, error) {
	d, err := c.Build()
	if err != nil {
		return sscm.Breakdown{}, err
	}
	return d.Cost()
}

// SweepTCO evaluates the TCO of each configuration across the shared
// parallel engine, returning results in input order. It is the substrate
// for the power/lifetime/φ grid sweeps the experiment figures iterate.
func SweepTCO(cfgs []Config) ([]units.Dollars, error) {
	return par.MapErr(cfgs, func(c Config) (units.Dollars, error) { return c.TCO() })
}

// SweepBreakdown mirrors SweepTCO for full cost breakdowns.
func SweepBreakdown(cfgs []Config) ([]sscm.Breakdown, error) {
	return par.MapErr(cfgs, func(c Config) (sscm.Breakdown, error) { return c.Breakdown() })
}

// MassItem is one row of a design's mass budget.
type MassItem struct {
	Name string
	Mass units.Mass
}

// MassBreakdown returns the satellite mass budget, heaviest first order
// not guaranteed — rows are in canonical reporting order.
func (d Design) MassBreakdown() []MassItem {
	return []MassItem{
		{"compute", d.ComputeMass},
		{"fso-isl", d.ISL.Mass},
		{"thermal", d.Thermal.TotalMass()},
		{"power", d.EPS.TotalMass()},
		{"adcs", d.ADCS.Mass},
		{"cdh", d.CDHMass},
		{"ttc", d.TTCMass},
		{"propulsion-dry", d.Propulsion.DryMass},
		{"structure", d.StructureMass},
		{"propellant", d.Propulsion.Propellant},
	}
}

// ComputeMassShare returns compute's fraction of total wet mass (the
// paper: "computer hardware is light — making up only a few percent of
// total mass").
func (d Design) ComputeMassShare() float64 {
	if d.WetMass == 0 {
		return 0
	}
	return float64(d.ComputeMass) / float64(d.WetMass)
}
