package core

import (
	"math"
	"testing"

	"sudc/internal/compress"
	"sudc/internal/hardware"
	"sudc/internal/par"
	"sudc/internal/solar"
	"sudc/internal/sscm"
	"sudc/internal/units"
)

func mustTCO(t *testing.T, c Config) float64 {
	t.Helper()
	v, err := c.TCO()
	if err != nil {
		t.Fatal(err)
	}
	return float64(v)
}

func TestValidate(t *testing.T) {
	if err := DefaultConfig(units.KW(4)).Validate(); err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero power", func(c *Config) { c.ComputePower = 0 }},
		{"zero lifetime", func(c *Config) { c.Lifetime = 0 }},
		{"no TDP", func(c *Config) { c.Server.Device.TDP = 0 }},
		{"no specific power", func(c *Config) { c.Server.SpecificPower = 0 }},
		{"bad orbit", func(c *Config) { c.Orbit.AltitudeM = 10 }},
		{"bad adcs", func(c *Config) { c.ADCS.WheelCount = 0 }},
		{"bad compression", func(c *Config) { c.Compression.Name = "x"; c.Compression.Ratio = 0.5 }},
	}
	for _, tt := range tests {
		c := DefaultConfig(units.KW(4))
		tt.mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: expected validation error", tt.name)
		}
		if _, err := c.Build(); err == nil {
			t.Errorf("%s: Build must reject invalid config", tt.name)
		}
	}
}

func TestBuildConverges(t *testing.T) {
	for _, kw := range []float64{0.5, 1, 2, 4, 8, 10} {
		d, err := DefaultConfig(units.KW(kw)).Build()
		if err != nil {
			t.Fatalf("%.1f kW: %v", kw, err)
		}
		// Mass closure: dry mass equals the sum of its parts.
		var sum units.Mass
		for _, it := range d.MassBreakdown() {
			sum += it.Mass
		}
		if !units.ApproxEqual(float64(sum), float64(d.WetMass), 1e-6) {
			t.Errorf("%.1f kW: mass budget %.3f kg != wet %.3f kg",
				kw, sum.Kilograms(), d.WetMass.Kilograms())
		}
		if d.WetMass <= d.DryMass {
			t.Errorf("%.1f kW: no propellant loaded", kw)
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	c := DefaultConfig(units.KW(4))
	d1, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	d2, _ := c.Build()
	if d1.DryMass != d2.DryMass || d1.EOLPower != d2.EOLPower {
		t.Error("Build is not deterministic")
	}
	b1, _ := d1.Cost()
	b2, _ := d2.Cost()
	if b1.TCO() != b2.TCO() {
		t.Error("Cost is not deterministic")
	}
}

func TestFourKWReferencePlausible(t *testing.T) {
	d, err := DefaultConfig(units.KW(4)).Build()
	if err != nil {
		t.Fatal(err)
	}
	// ESPA-Grande / smallsat class: hundreds of kg.
	if m := d.WetMass.Kilograms(); m < 400 || m > 1200 {
		t.Errorf("4 kW wet mass = %.0f kg, want 400-1200", m)
	}
	// ISL auto-sizes to the geometric-mean workload: ~26 Gbit/s.
	if g := d.InstalledISLRate.Gigabits(); g < 15 || g > 40 {
		t.Errorf("auto ISL rate = %.1f Gbit/s, want ≈26", g)
	}
	// BOL power roughly 2-3× the compute budget (pump + eclipse + EOL margin).
	ratio := d.Drivers.BOLPower / 4000
	if ratio < 2 || ratio > 3.5 {
		t.Errorf("BOL/compute ratio = %.2f, want 2-3.5", ratio)
	}
	// Radiator sized beyond the paper's passive 4 m² (pump heat included).
	if a := d.Thermal.Area.SquareMeters(); a < 4 || a > 8 {
		t.Errorf("radiator area = %.1f m², want 4-8", a)
	}
}

func TestComputeHardwareUnderOnePercentOfTCO(t *testing.T) {
	// Paper Fig. 5: "the computer hardware cost of a SµDC is < 1% of TCO".
	for _, kw := range []float64{0.5, 4, 10} {
		b, err := DefaultConfig(units.KW(kw)).Breakdown()
		if err != nil {
			t.Fatal(err)
		}
		if s := b.Share(sscm.PayloadCompute); s >= 0.01 {
			t.Errorf("%.1f kW: compute share = %.4f, want < 0.01", kw, s)
		}
	}
}

func TestComputeMassIsSmallShare(t *testing.T) {
	// Paper Fig. 6: compute is a small share of satellite mass.
	d, err := DefaultConfig(units.KW(4)).Build()
	if err != nil {
		t.Fatal(err)
	}
	if s := d.ComputeMassShare(); s > 0.18 {
		t.Errorf("compute mass share = %.3f, want ≤ 0.18", s)
	}
	if (Design{}).ComputeMassShare() != 0 {
		t.Error("zero design must report zero share")
	}
}

func TestPowerPlusThermalAboutAThird(t *testing.T) {
	// Paper §IV-B: "over a third of TCO is in power and thermal management".
	b, err := DefaultConfig(units.KW(4)).Breakdown()
	if err != nil {
		t.Fatal(err)
	}
	got := b.Share(sscm.Power) + b.Share(sscm.Thermal)
	if got < 0.28 || got > 0.42 {
		t.Errorf("power+thermal share = %.3f, want ≈1/3", got)
	}
}

func TestFig5SublinearPowerScaling(t *testing.T) {
	// Paper Fig. 5: 0.5→10 kW (20×) gives >3× but <4× TCO.
	t05 := mustTCO(t, DefaultConfig(units.KW(0.5)))
	t10 := mustTCO(t, DefaultConfig(units.KW(10)))
	ratio := t10 / t05
	if ratio <= 3 || ratio >= 4 {
		t.Errorf("TCO(10kW)/TCO(0.5kW) = %.2f, want in (3,4)", ratio)
	}
}

func TestTCOMonotoneInComputePower(t *testing.T) {
	prev := 0.0
	for _, kw := range []float64{0.5, 1, 2, 3, 4, 6, 8, 10} {
		v := mustTCO(t, DefaultConfig(units.KW(kw)))
		if v <= prev {
			t.Errorf("TCO not monotone at %.1f kW", kw)
		}
		prev = v
	}
}

func TestFig4LifetimeSuperlinear(t *testing.T) {
	// Paper Fig. 4: "For long lifetime missions, the cost grows
	// superlinearly" — per-year cost increments grow with lifetime.
	c := DefaultConfig(units.KW(4))
	var tco [11]float64
	for yr := 1; yr <= 10; yr++ {
		c.Lifetime = units.Years(yr)
		tco[yr] = mustTCO(t, c)
	}
	for yr := 2; yr <= 10; yr++ {
		if tco[yr] <= tco[yr-1] {
			t.Fatalf("TCO must grow with lifetime (year %d)", yr)
		}
	}
	early := tco[3] - tco[1]
	late := tco[10] - tco[8]
	if late <= early {
		t.Errorf("late increments (%.3g) must exceed early (%.3g): superlinear growth", late, early)
	}
}

func TestFig7ISLAnchors(t *testing.T) {
	// Paper Fig. 7: 25 Gbit/s on a 500 W SµDC costs <30% extra TCO;
	// full lightest-app saturation on 4 kW and 10 kW costs <26%.
	noISL := DefaultConfig(units.KW(0.5))
	noISL.OmitISL = true
	base := mustTCO(t, noISL)
	with := DefaultConfig(units.KW(0.5))
	with.ISLRate = units.GbpsOf(25)
	inc := mustTCO(t, with)/base - 1
	if inc >= 0.30 || inc < 0.15 {
		t.Errorf("500 W + 25 Gbit/s TCO increase = %.3f, want [0.15,0.30)", inc)
	}
	for _, kw := range []float64{4, 10} {
		b := DefaultConfig(units.KW(kw))
		b.OmitISL = true
		base := mustTCO(t, b)
		w := DefaultConfig(units.KW(kw))
		w.ISLRate = units.DataRate(kw * 1000 * 2597e3 * 16) // lightest app saturation
		inc := mustTCO(t, w)/base - 1
		if inc >= 0.26 {
			t.Errorf("%.0f kW saturation ISL TCO increase = %.3f, want <0.26", kw, inc)
		}
	}
}

func TestFig9ArchitectureBarelyMovesTCO(t *testing.T) {
	// Paper Fig. 9: "TCO effects are minimal due to relatively low cost of
	// the compute" across 3090/A100/H100 at the same power budget.
	tcos := map[string]float64{}
	for _, dev := range []hardware.Device{hardware.RTX3090, hardware.A100, hardware.H100} {
		c := DefaultConfig(units.KW(4))
		c.Server = hardware.DefaultServer(dev)
		tcos[dev.Name] = mustTCO(t, c)
	}
	base := tcos["RTX 3090"]
	for name, v := range tcos {
		if diff := math.Abs(v-base) / base; diff > 0.03 {
			t.Errorf("%s TCO differs from 3090 by %.3f, want <0.03", name, diff)
		}
	}
	// But the expensive parts do cost *something* more.
	if !(tcos["H100"] > tcos["A100"] && tcos["A100"] > tcos["RTX 3090"]) {
		t.Error("hardware price ordering should still show up in TCO")
	}
}

func TestCompressionReducesTCO(t *testing.T) {
	plain := mustTCO(t, DefaultConfig(units.KW(4)))
	for _, alg := range compress.All() {
		c := DefaultConfig(units.KW(4))
		c.Compression = alg
		v := mustTCO(t, c)
		if v >= plain {
			t.Errorf("%s must reduce TCO (%.3g vs %.3g)", alg.Name, v, plain)
		}
	}
	// Stronger compression saves more.
	cc := DefaultConfig(units.KW(4))
	cc.Compression = compress.CCSDS
	nn := DefaultConfig(units.KW(4))
	nn.Compression = compress.Neural
	if mustTCO(t, nn) >= mustTCO(t, cc) {
		t.Error("neural compression must save more than CCSDS")
	}
}

func TestOmitISL(t *testing.T) {
	c := DefaultConfig(units.KW(4))
	c.OmitISL = true
	d, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	if d.ISL.Heads != 0 || d.ISL.Power != 0 || d.InstalledISLRate != 0 {
		t.Errorf("OmitISL must produce no link hardware: %+v", d.ISL)
	}
}

func TestDesignISLRate(t *testing.T) {
	if DesignISLRate(0) != 0 {
		t.Error("zero budget → zero rate")
	}
	r := DesignISLRate(units.KW(4))
	if g := r.Gigabits(); g < 20 || g > 35 {
		t.Errorf("design rate at 4 kW = %.1f Gbit/s, want ≈26", g)
	}
	// Linear in budget.
	if !units.ApproxEqual(float64(DesignISLRate(units.KW(8))), 2*float64(r), 1e-12) {
		t.Error("design rate must be linear in budget")
	}
}

func TestEOLPowerComposition(t *testing.T) {
	d, err := DefaultConfig(units.KW(4)).Build()
	if err != nil {
		t.Fatal(err)
	}
	want := d.ComputePower + d.ISL.Power + d.Config.AvionicsPower + d.ADCS.Power + d.Thermal.PumpPower
	if !units.ApproxEqual(float64(d.EOLPower), float64(want), 1e-9) {
		t.Errorf("EOL power = %v, want %v", d.EOLPower, want)
	}
	// The EPS was sized for exactly that load.
	if d.EPS.EOLLoad != d.EOLPower {
		t.Error("EPS must be sized for the EOL load")
	}
}

func TestDriversMatchDesign(t *testing.T) {
	d, err := DefaultConfig(units.KW(4)).Build()
	if err != nil {
		t.Fatal(err)
	}
	dr := d.Drivers
	if dr.DryMass != float64(d.DryMass) || dr.WetMass != float64(d.WetMass) {
		t.Error("driver masses out of sync")
	}
	if dr.BOLPower != float64(d.EPS.BOLArrayPower) {
		t.Error("driver BOL power out of sync")
	}
	if dr.PumpBOLPower <= 0 || dr.PumpBOLPower >= dr.BOLPower {
		t.Errorf("pump BOL share = %v, want in (0, BOL)", dr.PumpBOLPower)
	}
	if err := dr.Validate(); err != nil {
		t.Errorf("drivers must validate: %v", err)
	}
}

func TestAltCostModelRuns(t *testing.T) {
	c := DefaultConfig(units.KW(4))
	c.CostModel = sscm.Alt()
	b, err := c.Breakdown()
	if err != nil {
		t.Fatal(err)
	}
	ref, _ := DefaultConfig(units.KW(4)).Breakdown()
	// Same physical design, different accounting: totals within 15%.
	if diff := math.Abs(float64(b.TCO()-ref.TCO())) / float64(ref.TCO()); diff > 0.15 {
		t.Errorf("SEER-like total differs by %.2f, want <0.15", diff)
	}
}

func TestMassBreakdownRows(t *testing.T) {
	d, err := DefaultConfig(units.KW(4)).Build()
	if err != nil {
		t.Fatal(err)
	}
	rows := d.MassBreakdown()
	if len(rows) != 10 {
		t.Fatalf("mass budget has %d rows, want 10", len(rows))
	}
	for _, r := range rows {
		if r.Mass < 0 {
			t.Errorf("%s: negative mass", r.Name)
		}
		if r.Name == "" {
			t.Error("unnamed mass row")
		}
	}
}

func TestPassiveThermalOption(t *testing.T) {
	active := DefaultConfig(units.KW(4))
	passive := DefaultConfig(units.KW(4))
	passive.PassiveThermal = true
	da, err := active.Build()
	if err != nil {
		t.Fatal(err)
	}
	dp, err := passive.Build()
	if err != nil {
		t.Fatal(err)
	}
	if dp.Thermal.PumpPower != 0 {
		t.Error("passive design must have no pump power")
	}
	if dp.Thermal.Area <= da.Thermal.Area {
		t.Error("passive radiator must be larger (T⁴ at the cold plate)")
	}
	if dp.EOLPower >= da.EOLPower {
		t.Error("passive design must draw less power (no pump)")
	}
	// The trade the paper's active design makes: the pump buys a smaller,
	// lighter radiator at the cost of power. Either can win on TCO; both
	// must at least produce a valid costed design.
	if _, err := dp.Cost(); err != nil {
		t.Fatal(err)
	}
}

func TestRTGOption(t *testing.T) {
	rtg := solar.GPHSClass
	c := DefaultConfig(units.KW(0.5))
	c.RTG = &rtg
	d, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	if d.EPS.BatteryMass != 0 {
		t.Error("RTG design must carry no battery")
	}
	solarTCO := mustTCO(t, DefaultConfig(units.KW(0.5)))
	b, err := d.Cost()
	if err != nil {
		t.Fatal(err)
	}
	if float64(b.TCO()) < 1.5*solarTCO {
		t.Errorf("RTG SµDC (%v) must cost far more than solar (%v) at LEO",
			b.TCO(), units.Dollars(solarTCO))
	}
}

func TestDecodePowerRefinement(t *testing.T) {
	upper := DefaultConfig(units.KW(4))
	upper.Compression = compress.Neural
	refined := upper
	refined.IncludeDecodePower = true
	tUpper := mustTCO(t, upper)
	tRefined := mustTCO(t, refined)
	if tRefined <= tUpper {
		t.Error("charging decode power must raise TCO above the upper-bound analysis")
	}
	// But compression must still pay off overall.
	plain := mustTCO(t, DefaultConfig(units.KW(4)))
	if tRefined >= plain {
		t.Error("neural compression must still win with decode power charged")
	}
	// Decode power is irrelevant without an ISL.
	noISL := refined
	noISL.OmitISL = true
	noISLBase := upper
	noISLBase.OmitISL = true
	if mustTCO(t, noISL) != mustTCO(t, noISLBase) {
		t.Error("decode power must not apply without a link")
	}
}

func TestSweepTCOMatchesSerial(t *testing.T) {
	cfgs := []Config{
		DefaultConfig(units.KW(0.5)),
		DefaultConfig(units.KW(2)),
		DefaultConfig(units.KW(4)),
		DefaultConfig(units.KW(10)),
	}
	got, err := SweepTCO(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(cfgs) {
		t.Fatalf("sweep returned %d results for %d configs", len(got), len(cfgs))
	}
	for i, c := range cfgs {
		want, err := c.TCO()
		if err != nil {
			t.Fatal(err)
		}
		if got[i] != want {
			t.Errorf("config %d: sweep TCO %v != serial TCO %v", i, got[i], want)
		}
	}
	for _, w := range []int{1, 2, 8} {
		prev := par.SetDefaultWorkers(w)
		again, err := SweepTCO(cfgs)
		par.SetDefaultWorkers(prev)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		for i := range got {
			if again[i] != got[i] {
				t.Errorf("workers=%d: result %d differs", w, i)
			}
		}
	}
}

func TestSweepBreakdownPropagatesErrors(t *testing.T) {
	bad := DefaultConfig(units.KW(4))
	bad.ComputePower = -1
	if _, err := SweepBreakdown([]Config{DefaultConfig(units.KW(4)), bad}); err == nil {
		t.Error("invalid config in sweep must error")
	}
}
