package compress

import (
	"testing"
	"testing/quick"

	"sudc/internal/units"
)

func TestAllValid(t *testing.T) {
	for _, a := range append(All(), None) {
		if err := a.Validate(); err != nil {
			t.Errorf("%s: %v", a.Name, err)
		}
	}
}

func TestRatioOrdering(t *testing.T) {
	// The paper's savings ordering: CCSDS < JPEG2000 < neural.
	if !(CCSDS.Ratio < JPEG2000.Ratio && JPEG2000.Ratio < Neural.Ratio) {
		t.Errorf("ratio ordering broken: %v %v %v", CCSDS.Ratio, JPEG2000.Ratio, Neural.Ratio)
	}
	all := All()
	for i := 1; i < len(all); i++ {
		if all[i-1].Ratio >= all[i].Ratio {
			t.Error("All() must be sorted weakest ratio first")
		}
	}
}

func TestCompressedRate(t *testing.T) {
	r, err := Neural.CompressedRate(units.GbpsOf(100))
	if err != nil {
		t.Fatal(err)
	}
	if !units.ApproxEqual(r.Gigabits(), 25, 1e-12) {
		t.Errorf("100 Gbit/s at 4:1 = %v, want 25 Gbit/s", r.Gigabits())
	}
	if _, err := Neural.CompressedRate(-1); err == nil {
		t.Error("negative raw rate must error")
	}
	if _, err := (Algorithm{Name: "bad", Ratio: 0.5}).CompressedRate(1); err == nil {
		t.Error("ratio < 1 must error")
	}
}

func TestNoneIsIdentity(t *testing.T) {
	raw := units.GbpsOf(42)
	r, err := None.CompressedRate(raw)
	if err != nil {
		t.Fatal(err)
	}
	if r != raw {
		t.Errorf("uncompressed rate changed: %v", r)
	}
	if None.Savings() != 0 {
		t.Error("uncompressed savings must be zero")
	}
}

func TestSavings(t *testing.T) {
	// Asymptotic TCO savings in Fig. 10 are proportional to 1 − 1/ratio:
	// CCSDS ≈ 33%, JPEG2000 ≈ 58%, neural = 75% of the ISL cost share.
	if got := CCSDS.Savings(); !units.ApproxEqual(got, 1-1/1.5, 1e-12) {
		t.Errorf("CCSDS savings = %v", got)
	}
	if got := Neural.Savings(); !units.ApproxEqual(got, 0.75, 1e-12) {
		t.Errorf("neural savings = %v, want 0.75", got)
	}
	if (Algorithm{}).Savings() != 0 {
		t.Error("degenerate algorithm must report zero savings")
	}
}

func TestDecodePower(t *testing.T) {
	p := Neural.DecodePower(units.GbpsOf(10))
	if got := p.Watts(); !units.ApproxEqual(got, 50, 1e-9) {
		t.Errorf("neural decode power at 10 Gbit/s = %v W, want 50", got)
	}
	if None.DecodePower(units.GbpsOf(10)) != 0 {
		t.Error("uncompressed stream needs no decode power")
	}
}

func TestDecodePowerEdges(t *testing.T) {
	// DecodePower feeds additively into TCO sums, so invalid inputs must
	// clamp to zero: a negative result would silently reduce cost.
	tests := []struct {
		name string
		alg  Algorithm
		raw  units.DataRate
		want float64
	}{
		{"nominal neural", Neural, units.GbpsOf(10), 50},
		{"zero-energy None", None, units.GbpsOf(10), 0},
		{"zero rate", Neural, 0, 0},
		{"negative raw rate", Neural, units.DataRate(-1e9), 0},
		{"invalid ratio", Algorithm{Name: "bad", Ratio: 0.5, DecodeEnergyPerBit: 1e-9}, units.GbpsOf(1), 0},
		{"negative decode energy", Algorithm{Name: "neg", Ratio: 2, DecodeEnergyPerBit: -1e-9}, units.GbpsOf(1), 0},
	}
	for _, tc := range tests {
		got := tc.alg.DecodePower(tc.raw).Watts()
		if !units.ApproxEqual(got, tc.want, 1e-9) {
			t.Errorf("%s: DecodePower = %v W, want %v", tc.name, got, tc.want)
		}
		if got < 0 {
			t.Errorf("%s: negative decode power %v W would reduce TCO", tc.name, got)
		}
	}
}

func TestLosslessFlags(t *testing.T) {
	if !CCSDS.Lossless || !JPEG2000.Lossless {
		t.Error("CCSDS and JPEG2000 are lossless")
	}
	if Neural.Lossless {
		t.Error("neural coder is quasi-lossless, not lossless")
	}
	if Neural.PSNRdB <= 40 {
		t.Error("neural coder is high-PSNR")
	}
}

func TestCompressedRateNeverIncreases(t *testing.T) {
	f := func(raw uint32) bool {
		rate := units.DataRate(raw)
		for _, a := range All() {
			c, err := a.CompressedRate(rate)
			if err != nil || c > rate {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestByName(t *testing.T) {
	for name, want := range map[string]Algorithm{
		"":         None,
		"none":     None,
		"ccsds":    CCSDS,
		"CCSDS":    CCSDS,
		"jpeg2000": JPEG2000,
		"neural":   Neural,
	} {
		got, err := ByName(name)
		if err != nil || got.Name != want.Name {
			t.Errorf("ByName(%q) = %v, %v; want %v", name, got.Name, err, want.Name)
		}
	}
	if _, err := ByName("zstd"); err == nil {
		t.Error("unknown algorithm accepted")
	}
}
