// Package compress models the image-compression algorithms the paper
// evaluates for shrinking ISL capacity requirements (Figure 10): CCSDS
// lossless coding, lossless JPEG 2000, and a high-PSNR quasi-lossless
// neural compressor [7]. Ratios are calibrated so the paper's reported TCO
// savings reproduce (≈3/5/8 % today; 11.7/20.5/26.5 % asymptotically).
//
// As in the paper, the default accounting excludes decompression power
// ("these are upper bounds on the possible TCO improvements"); the
// DecodeEnergyPerBit field lets callers do the more conservative analysis.
package compress

import (
	"errors"
	"fmt"
	"strings"

	"sudc/internal/units"
)

// Algorithm describes a compression scheme applied to imagery before ISL
// transmission.
type Algorithm struct {
	Name string
	// Ratio is the compression ratio (input bits / output bits), > 1.
	Ratio float64
	// Lossless reports bit-exact reconstruction.
	Lossless bool
	// PSNRdB is reconstruction quality for lossy schemes (0 if lossless).
	PSNRdB float64
	// DecodeEnergyPerBit is the optional decompression energy at the
	// receiver in J per *decoded* bit.
	DecodeEnergyPerBit float64
}

// The paper's three algorithms plus the uncompressed baseline.
var (
	// None is the uncompressed baseline.
	None = Algorithm{Name: "uncompressed", Ratio: 1, Lossless: true}
	// CCSDS is the CCSDS 121.0 lossless coder, "a standard lossless
	// compression algorithm for use in space".
	CCSDS = Algorithm{Name: "CCSDS", Ratio: 1.5, Lossless: true,
		DecodeEnergyPerBit: 2e-10}
	// JPEG2000 is lossless JPEG 2000.
	JPEG2000 = Algorithm{Name: "lossless JPEG2000", Ratio: 2.38, Lossless: true,
		DecodeEnergyPerBit: 8e-10}
	// Neural is the quasi-lossless neural compressor of Bacchus et al. [7].
	Neural = Algorithm{Name: "neural quasi-lossless", Ratio: 4.0, Lossless: false,
		PSNRdB: 55, DecodeEnergyPerBit: 5e-9}
)

// All returns the three paper algorithms, weakest ratio first.
func All() []Algorithm { return []Algorithm{CCSDS, JPEG2000, Neural} }

// ByName finds an algorithm by a flag-friendly short name — "none",
// "ccsds", "jpeg2000", "neural" — or its full display name.
func ByName(name string) (Algorithm, error) {
	switch strings.ToLower(name) {
	case "", "none", "uncompressed":
		return None, nil
	case "ccsds":
		return CCSDS, nil
	case "jpeg2000", "lossless jpeg2000":
		return JPEG2000, nil
	case "neural", "neural quasi-lossless":
		return Neural, nil
	}
	return Algorithm{}, fmt.Errorf("compress: unknown algorithm %q", name)
}

// Validate reports parameter errors.
func (a Algorithm) Validate() error {
	if a.Name == "" {
		return errors.New("compress: algorithm without name")
	}
	if a.Ratio < 1 {
		return fmt.Errorf("compress: %s: ratio %v < 1", a.Name, a.Ratio)
	}
	if a.DecodeEnergyPerBit < 0 {
		return fmt.Errorf("compress: %s: negative decode energy", a.Name)
	}
	return nil
}

// CompressedRate returns the ISL rate needed to carry raw traffic of the
// given rate after compression.
func (a Algorithm) CompressedRate(raw units.DataRate) (units.DataRate, error) {
	if err := a.Validate(); err != nil {
		return 0, err
	}
	if raw < 0 {
		return 0, errors.New("compress: negative raw rate")
	}
	return units.DataRate(float64(raw) / a.Ratio), nil
}

// DecodePower returns the receiver-side decompression power when carrying
// raw traffic of the given rate (decoded bits per second × J/bit). Like
// CompressedRate it rejects invalid inputs, but since decode power feeds
// additively into TCO sums it clamps to zero instead of erroring: a
// negative rate or malformed algorithm contributes no power rather than
// a negative term that would silently *reduce* downstream cost.
func (a Algorithm) DecodePower(raw units.DataRate) units.Power {
	if a.Validate() != nil || raw < 0 {
		return 0
	}
	return units.Power(float64(raw) * a.DecodeEnergyPerBit)
}

// Savings returns the fractional link-capacity saving, 1 − 1/ratio.
func (a Algorithm) Savings() float64 {
	if a.Ratio <= 0 {
		return 0
	}
	return 1 - 1/a.Ratio
}
