package hardware

import (
	"testing"

	"sudc/internal/units"
)

func TestCatalogComplete(t *testing.T) {
	c := Catalog()
	if len(c) != 8 {
		t.Fatalf("catalog has %d devices, want 8 (Table II)", len(c))
	}
	names := map[string]bool{}
	for _, d := range c {
		if d.Name == "" {
			t.Error("device with empty name")
		}
		if names[d.Name] {
			t.Errorf("duplicate device %q", d.Name)
		}
		names[d.Name] = true
	}
}

func TestByName(t *testing.T) {
	d, err := ByName("A100")
	if err != nil {
		t.Fatal(err)
	}
	if d.TF32TFLOPs != 156 {
		t.Errorf("A100 TF32 = %v, want 156", d.TF32TFLOPs)
	}
	if _, err := ByName("TPUv9"); err == nil {
		t.Error("unknown device must error")
	}
}

func TestPaperEfficiencyRatios(t *testing.T) {
	// Paper §III: "the A100 and H100 have max FLOPs/W advantage of 5.1×
	// and 21.2×, respectively, over RTX 3090" (using tensor ops).
	base := RTX3090.FLOPsPerWatt(true)
	a := A100.FLOPsPerWatt(true) / base
	h := H100.FLOPsPerWatt(true) / base
	if !units.ApproxEqual(a, 5.1, 0.02) {
		t.Errorf("A100/3090 FLOPs/W ratio = %.2f, want ≈5.1", a)
	}
	if !units.ApproxEqual(h, 21.2, 0.03) {
		t.Errorf("H100/3090 FLOPs/W ratio = %.2f, want ≈21.2", h)
	}
}

func TestPaperPriceRatios(t *testing.T) {
	// Paper §III: A100 and H100 max FLOPs/$ are 0.50× and 0.82× the 3090.
	base := RTX3090.FLOPsPerDollar(false)
	if base <= 0 {
		t.Fatal("3090 FLOPs/$ must be positive")
	}
	a := A100.FLOPsPerDollar(true) / base
	h := H100.FLOPsPerDollar(true) / base
	if !units.ApproxEqual(a, 0.50, 0.15) {
		t.Errorf("A100/3090 FLOPs/$ ratio = %.2f, want ≈0.50", a)
	}
	if !units.ApproxEqual(h, 0.82, 0.05) {
		t.Errorf("H100/3090 FLOPs/$ ratio = %.2f, want ≈0.82", h)
	}
}

func TestVirtex5QVvsH100(t *testing.T) {
	// Paper §VIII: rad-hard Virtex-5QV is 27× less energy-efficient than
	// H100 in FP32, 405× with TF32.
	fp32 := H100.FLOPsPerWatt(false) / Virtex5QV.FLOPsPerWatt(false)
	tf32 := H100.FLOPsPerWatt(true) / Virtex5QV.FLOPsPerWatt(false)
	if !units.ApproxEqual(fp32, 27, 0.03) {
		t.Errorf("H100/Virtex FP32 efficiency ratio = %.1f, want ≈27", fp32)
	}
	if !units.ApproxEqual(tf32, 405, 0.03) {
		t.Errorf("H100(TF32)/Virtex efficiency ratio = %.0f, want ≈405", tf32)
	}
}

func TestMissingFieldsReturnZero(t *testing.T) {
	if Radeon780M.FLOPsPerDollar(false) != 0 {
		t.Error("no-price device must report zero FLOPs/$")
	}
	if KintexXQR.FLOPsPerWatt(false) != 0 {
		t.Error("no-TDP device must report zero FLOPs/W")
	}
}

func TestSurvivesLEO(t *testing.T) {
	// 5-yr LEO at 0.5 krad/yr = 2.5 krad; rad-hard parts survive with huge
	// margin; worst-case COTS band (2 krad) does not at 1× margin.
	if !RAD750.SurvivesLEO(2.5, 10) {
		t.Error("RAD750 must survive 10× a 5-yr LEO dose")
	}
	if RTX3090.SurvivesLEO(2.5, 1) {
		t.Error("worst-case COTS band should not clear 2.5 krad at low end")
	}
}

func TestFleetFor(t *testing.T) {
	f, err := FleetFor(DefaultServer(RTX3090), units.KW(4))
	if err != nil {
		t.Fatal(err)
	}
	// 4000/350 = 11.4 → 11 nodes.
	if f.Nodes != 11 {
		t.Errorf("4 kW of 3090s = %d nodes, want 11", f.Nodes)
	}
	if got := f.Power.Watts(); got != 11*350 {
		t.Errorf("fleet power = %v, want 3850", got)
	}
	// 35 W/kg packaged: 3850/35 = 110 kg.
	if got := f.Mass.Kilograms(); !units.ApproxEqual(got, 110, 1e-9) {
		t.Errorf("fleet mass = %v kg, want 110", got)
	}
	if f.HardwareCost <= 0 || f.PeakFLOPs <= 0 {
		t.Error("fleet cost and FLOPs must be positive")
	}
}

func TestFleetForAtLeastOneNode(t *testing.T) {
	f, err := FleetFor(DefaultServer(H100), units.Power(100))
	if err != nil {
		t.Fatal(err)
	}
	if f.Nodes != 1 {
		t.Errorf("undersized budget must still install one node, got %d", f.Nodes)
	}
}

func TestFleetForErrors(t *testing.T) {
	if _, err := FleetFor(Server{Device: RTX3090}, units.KW(1)); err == nil {
		t.Error("zero device count must error")
	}
	if _, err := FleetFor(DefaultServer(KintexXQR), units.KW(1)); err == nil {
		t.Error("device without TDP must error")
	}
	if _, err := FleetFor(DefaultServer(RTX3090), 0); err == nil {
		t.Error("zero budget must error")
	}
}

func TestRankByEfficiency(t *testing.T) {
	ranked := RankByEfficiency()
	if len(ranked) == 0 {
		t.Fatal("empty ranking")
	}
	if ranked[0].Name != "H100" {
		t.Errorf("most efficient device = %q, want H100", ranked[0].Name)
	}
	for i := 1; i < len(ranked); i++ {
		if ranked[i-1].FLOPsPerWatt(true) < ranked[i].FLOPsPerWatt(true) {
			t.Error("ranking not sorted descending")
		}
	}
	// Rad-hard parts with published TDP appear at the bottom.
	last := ranked[len(ranked)-1]
	if last.Class != RadHard {
		t.Errorf("least efficient ranked device = %q, want a rad-hard part", last.Name)
	}
}

func TestClassString(t *testing.T) {
	if COTS.String() != "COTS" || RadHard.String() != "rad-hard" {
		t.Error("Class.String mismatch")
	}
}
