// Package hardware catalogs the compute devices the paper evaluates
// (Table II): commodity COTS GPUs with strong FLOPs/$ but varying FLOPs/W,
// and radiation-hardened processors with extreme TID tolerance but
// prohibitive cost and poor efficiency. It also models server packaging —
// the paper's observation that "even after packaging, PCB integration,
// adding cooling, etc., an NVIDIA A40 GPU server has specific power of
// >35 W/kg" — which makes compute mass a minor TCO factor.
package hardware

import (
	"errors"
	"fmt"
	"sort"

	"sudc/internal/units"
)

// Class distinguishes commodity from radiation-hardened devices.
type Class int

// Device classes.
const (
	// COTS is commercial-off-the-shelf, non-radiation-hardened hardware.
	COTS Class = iota
	// RadHard is radiation-hardened hardware.
	RadHard
)

func (c Class) String() string {
	if c == RadHard {
		return "rad-hard"
	}
	return "COTS"
}

// Device is one row of the paper's Table II.
type Device struct {
	Name  string
	Class Class
	// TIDToleranceKrad is the total-ionizing-dose tolerance in krad(Si).
	// For COTS parts the paper lists the conservative 2–10 band; we store
	// the low end.
	TIDToleranceKrad units.Dose
	// Price is the unit price; zero means not published (N/A).
	Price units.Dollars
	// TDP is the thermal design power; zero means not published.
	TDP units.Power
	// FP32TFLOPs is peak IEEE FP32 throughput in TFLOP/s.
	FP32TFLOPs float64
	// TF32TFLOPs is peak TF32 tensor-core throughput; zero if absent.
	TF32TFLOPs float64
}

// Table II of the paper.
var (
	RTX3090 = Device{
		Name: "RTX 3090", Class: COTS, TIDToleranceKrad: 2,
		Price: 1690, TDP: 350, FP32TFLOPs: 35.58,
	}
	A100 = Device{
		Name: "A100", Class: COTS, TIDToleranceKrad: 2,
		Price: 17210, TDP: 300, FP32TFLOPs: 19.5, TF32TFLOPs: 156,
	}
	H100 = Device{
		Name: "H100", Class: COTS, TIDToleranceKrad: 2,
		Price: 43989, TDP: 350, FP32TFLOPs: 51, TF32TFLOPs: 756,
	}
	Radeon780M = Device{
		Name: "Radeon 780M", Class: COTS, TIDToleranceKrad: 2,
		TDP: 15, FP32TFLOPs: 8.29,
	}
	RAD750 = Device{
		Name: "BAE RAD750", Class: RadHard, TIDToleranceKrad: 200,
		Price: 200000, TDP: 5, FP32TFLOPs: 0.00027,
	}
	MPC8548E = Device{
		Name: "MPC8548E", Class: RadHard, TIDToleranceKrad: 100,
		Price: 200000, TDP: 5, FP32TFLOPs: 0.008,
	}
	Virtex5QV = Device{
		Name: "Virtex-5QV", Class: RadHard, TIDToleranceKrad: 1000,
		Price: 75000, TDP: 15, FP32TFLOPs: 0.08,
	}
	KintexXQR = Device{
		Name: "Kintex UltraScale XQR", Class: RadHard, TIDToleranceKrad: 100,
		FP32TFLOPs: 0.65, // estimated from DSP count (paper footnote 2)
	}
)

// Catalog returns all Table II devices, COTS first, in the paper's order.
func Catalog() []Device {
	return []Device{RTX3090, A100, H100, Radeon780M, RAD750, MPC8548E, Virtex5QV, KintexXQR}
}

// ByName finds a catalog device by its exact name.
func ByName(name string) (Device, error) {
	for _, d := range Catalog() {
		if d.Name == name {
			return d, nil
		}
	}
	return Device{}, fmt.Errorf("hardware: unknown device %q", name)
}

// FLOPsPerWatt returns peak FP32 throughput per watt (FLOP/s/W, i.e.
// FLOP/J). TensorOps selects TF32 tensor-core throughput where available.
func (d Device) FLOPsPerWatt(tensorOps bool) float64 {
	if d.TDP <= 0 {
		return 0
	}
	return d.peak(tensorOps) / float64(d.TDP)
}

// FLOPsPerDollar returns peak throughput per unit price (FLOP/s/$).
func (d Device) FLOPsPerDollar(tensorOps bool) float64 {
	if d.Price <= 0 {
		return 0
	}
	return d.peak(tensorOps) / float64(d.Price)
}

func (d Device) peak(tensorOps bool) float64 {
	t := d.FP32TFLOPs
	if tensorOps && d.TF32TFLOPs > 0 {
		t = d.TF32TFLOPs
	}
	return t * 1e12
}

// SurvivesLEO reports whether the device's TID tolerance exceeds the
// accumulated dose with the given margin factor.
func (d Device) SurvivesLEO(dose units.Dose, margin float64) bool {
	return float64(d.TIDToleranceKrad) >= float64(dose)*margin
}

// Server models a packaged, integrated compute server built from devices.
type Server struct {
	Device Device
	// Count is the number of devices per server node.
	Count int
	// SpecificPower is the packaged W/kg (≥35 for GPU servers, paper §III).
	SpecificPower units.SpecificPower
	// IntegrationCostFactor multiplies device cost for PCB, chassis, NICs,
	// host CPU and integration.
	IntegrationCostFactor float64
}

// DefaultServer packages the device as the paper assumes: 35 W/kg and a
// 1.6× integration markup over bare device price.
func DefaultServer(d Device) Server {
	return Server{Device: d, Count: 1, SpecificPower: 35, IntegrationCostFactor: 1.6}
}

// Fleet sizes a fleet of servers to fill a compute power budget.
type Fleet struct {
	Server Server
	// Nodes is the number of server nodes installed.
	Nodes int
	// Power is the fleet's aggregate TDP draw.
	Power units.Power
	// Mass is the packaged fleet mass.
	Mass units.Mass
	// HardwareCost is the fleet recurring cost.
	HardwareCost units.Dollars
	// PeakFLOPs is aggregate FP32 throughput in FLOP/s.
	PeakFLOPs float64
}

// FleetFor fills the power budget with as many whole servers as fit
// (at least one).
func FleetFor(s Server, budget units.Power) (Fleet, error) {
	if s.Count <= 0 {
		return Fleet{}, errors.New("hardware: server needs at least one device")
	}
	if s.Device.TDP <= 0 {
		return Fleet{}, fmt.Errorf("hardware: device %q has no TDP", s.Device.Name)
	}
	if budget <= 0 {
		return Fleet{}, errors.New("hardware: non-positive power budget")
	}
	perNode := float64(s.Device.TDP) * float64(s.Count)
	n := int(float64(budget) / perNode)
	if n < 1 {
		n = 1
	}
	power := units.Power(float64(n) * perNode)
	cost := float64(s.Device.Price) * float64(s.Count) * float64(n) * s.IntegrationCostFactor
	return Fleet{
		Server:       s,
		Nodes:        n,
		Power:        power,
		Mass:         s.SpecificPower.MassFor(power),
		HardwareCost: units.Dollars(cost),
		PeakFLOPs:    s.Device.peak(false) * float64(s.Count) * float64(n),
	}, nil
}

// RankByEfficiency returns the catalog devices with published TDP sorted by
// descending FLOPs/W (tensor ops where available) — the ordering that,
// per the paper's Figure 9 analysis, determines performance per TCO dollar.
func RankByEfficiency() []Device {
	var out []Device
	for _, d := range Catalog() {
		if d.TDP > 0 {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].FLOPsPerWatt(true) > out[j].FLOPsPerWatt(true)
	})
	return out
}
