package placement

import (
	"math"
	"testing"
)

// FuzzPolicyDecision checks the two invariants every policy must hold
// for any priced model and load state: the decision names a valid tier,
// and the Oracle's estimated cost lower-bounds every policy's estimate.
func FuzzPolicyDecision(f *testing.F) {
	f.Add(0.001, 1.0, 0.01, 2.0, 0.05, 0.5, 0.02, 3.0, 1e-3, 0, 4, 100, 0)
	f.Add(1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 0.0, 0, 0, 0, 0)
	f.Add(0.5, 10.0, 0.0, 0.1, 2.0, 5.0, 0.01, 60.0, 1e-2, 1000, 1, 0, 7)
	f.Fuzz(func(t *testing.T,
		d0, s0, d1, s1, d2, s2, d3, s3, w float64,
		q0, q1, q2, q3 int) {
		clampDollars := func(v float64) float64 {
			if !(v >= 0) || v > 1e9 {
				return 1
			}
			return v
		}
		clampSvc := func(v float64) float64 {
			if !(v > 0) || v > 1e6 {
				return 1
			}
			return v
		}
		clampQ := func(v int) int {
			if v < 0 {
				return 0
			}
			if v > 1<<30 {
				return 1 << 30
			}
			return v
		}
		if !(w >= 0) || w > 1e6 {
			w = 1e-3
		}
		m := Model{
			LatencyWeight: w,
			Tiers: [NumTiers]TierCost{
				{DollarsPerFrame: clampDollars(d0), ServiceTime: clampSvc(s0), Servers: 4},
				{DollarsPerFrame: clampDollars(d1), ServiceTime: clampSvc(s1), Servers: 8},
				{DollarsPerFrame: clampDollars(d2), ServiceTime: clampSvc(s2), Servers: 2},
				{DollarsPerFrame: clampDollars(d3), ServiceTime: clampSvc(s3), Servers: 0},
			},
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("clamped model invalid: %v", err)
		}
		st := State{QueueLen: [NumTiers]int{clampQ(q0), clampQ(q1), clampQ(q2), clampQ(q3)}}
		oracle := (Policy{Kind: Oracle}).Decide(m, st)
		if !oracle.Tier.Valid() {
			t.Fatalf("oracle chose invalid tier %d", int(oracle.Tier))
		}
		for _, k := range Kinds() {
			for tier := Tier(0); tier < NumTiers; tier++ {
				p := Policy{Kind: k, StaticTier: tier}
				d := p.Decide(m, st)
				if !d.Tier.Valid() {
					t.Fatalf("%v(static=%v): invalid tier %d", k, tier, int(d.Tier))
				}
				if math.IsNaN(d.EstCost) {
					t.Fatalf("%v(static=%v): NaN cost", k, tier)
				}
				// The Oracle reports the analytic floor min StaticCost; a
				// Static policy pays at least that, and QueueAware only adds
				// a non-negative estimated wait on top.
				if d.EstCost < oracle.EstCost-1e-12*math.Abs(oracle.EstCost) {
					t.Fatalf("%v(static=%v) cost %v beats oracle %v", k, tier, d.EstCost, oracle.EstCost)
				}
			}
		}
	})
}
