// Package placement decides, per frame, where Earth-observation compute
// runs: on the capturing satellite's flight computer, in an orbital SµDC
// reached over the ISL, at a ground-station edge site, or in the
// terrestrial cloud behind it — the four-tier choice of Thummala &
// Falco's "when to compute in space", priced end to end with the models
// this repo already has. The space side reuses the SµDC TCO closure
// (internal/core) amortized over the offered frame stream; the ground
// side combines the bent-pipe downlink budget (internal/downlink), the
// terrestrial TCO share gross-up (internal/terrestrial), and optional
// on-board compression (internal/compress) that shrinks what must come
// down.
//
// Policies are deterministic pure functions — Decide draws no
// randomness — so the DES stays byte-identical for any worker or shard
// count. The Oracle policy reports the analytic per-frame lower bound
// min over tiers of StaticCost; since realized latency can only add
// queueing on top of the transport+service floor, every policy's
// realized mean cost is provably ≥ the Oracle's.
package placement

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"time"

	"sudc/internal/compress"
	"sudc/internal/core"
	"sudc/internal/downlink"
	"sudc/internal/orbit"
	"sudc/internal/terrestrial"
	"sudc/internal/units"
	"sudc/internal/workload"
)

// Tier is a compute location, ordered space-to-ground.
type Tier int

// The four tiers. NumTiers sizes per-tier arrays.
const (
	// TierOnboard is the capturing satellite's own flight computer.
	TierOnboard Tier = iota
	// TierSpace is the orbital SµDC reached over the ISL.
	TierSpace
	// TierGroundEdge is a compute site co-located with a ground station.
	TierGroundEdge
	// TierCloud is the terrestrial cloud behind the ground network.
	TierCloud
	NumTiers
)

var tierNames = [NumTiers]string{"onboard", "space", "ground-edge", "cloud"}

func (t Tier) String() string {
	if t < 0 || t >= NumTiers {
		return fmt.Sprintf("Tier(%d)", int(t))
	}
	return tierNames[t]
}

// Valid reports whether t names one of the four tiers.
func (t Tier) Valid() bool { return t >= 0 && t < NumTiers }

// Tiers returns the four tiers in order.
func Tiers() []Tier {
	return []Tier{TierOnboard, TierSpace, TierGroundEdge, TierCloud}
}

// TierCost prices one tier for one frame.
type TierCost struct {
	// DollarsPerFrame is the amortized cost of processing one frame at
	// this tier.
	DollarsPerFrame float64
	// TransportDelay is the unloaded time to move the frame to the tier
	// (ISL transmit, downlink access + transmit, WAN), seconds.
	TransportDelay float64
	// ServiceTime is the unloaded compute time per frame, seconds.
	ServiceTime float64
	// Servers is the tier's parallel server count; 0 means effectively
	// unbounded (the elastic cloud).
	Servers int
}

// Model prices all four tiers under one latency/cost exchange rate.
type Model struct {
	Tiers [NumTiers]TierCost
	// LatencyWeight converts seconds of frame latency into dollars
	// ($/frame-second), folding the latency objective into one scalar
	// cost.
	LatencyWeight float64
}

// Validate reports model errors.
func (m Model) Validate() error {
	if m.LatencyWeight < 0 {
		return errors.New("placement: negative latency weight")
	}
	for t, tc := range m.Tiers {
		switch {
		case tc.DollarsPerFrame < 0:
			return fmt.Errorf("placement: %s: negative $/frame", Tier(t))
		case tc.TransportDelay < 0:
			return fmt.Errorf("placement: %s: negative transport delay", Tier(t))
		case tc.ServiceTime <= 0:
			return fmt.Errorf("placement: %s: non-positive service time", Tier(t))
		case tc.Servers < 0:
			return fmt.Errorf("placement: %s: negative server count", Tier(t))
		}
	}
	return nil
}

// StaticCost is the load-free per-frame cost of a tier: dollars plus the
// latency-weighted transport+service floor. Realized latency can only
// add queueing on top of that floor, so StaticCost under-estimates
// realized cost by construction.
func (m Model) StaticCost(t Tier) float64 {
	tc := m.Tiers[t]
	return tc.DollarsPerFrame + m.LatencyWeight*(tc.TransportDelay+tc.ServiceTime)
}

// OracleCost is the analytic per-frame lower bound: the cheapest tier's
// StaticCost.
func (m Model) OracleCost() float64 {
	best := math.Inf(1)
	for t := Tier(0); t < NumTiers; t++ {
		if c := m.StaticCost(t); c < best {
			best = c
		}
	}
	return best
}

// Kind selects a placement policy.
type Kind int

// Policy kinds.
const (
	// Static routes every frame to one fixed tier.
	Static Kind = iota
	// GreedyCost routes each frame to the tier with the lowest
	// load-free StaticCost.
	GreedyCost
	// QueueAware augments StaticCost with an estimated queueing wait
	// from the tier's current backlog.
	QueueAware
	// Oracle is the offline lower bound: it routes like GreedyCost but
	// reports the analytic per-frame floor min StaticCost, which no
	// realized policy can beat.
	Oracle
	numKinds
)

var kindNames = [numKinds]string{"static", "greedy", "queue", "oracle"}

func (k Kind) String() string {
	if k < 0 || k >= numKinds {
		return fmt.Sprintf("Kind(%d)", int(k))
	}
	return kindNames[k]
}

// Kinds returns the policy kinds in order.
func Kinds() []Kind { return []Kind{Static, GreedyCost, QueueAware, Oracle} }

// KindByName finds a policy kind by its flag name.
func KindByName(name string) (Kind, error) {
	for k := Kind(0); k < numKinds; k++ {
		if kindNames[k] == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("placement: unknown policy %q", name)
}

// PolicyByName parses a CLI policy name: "greedy", "queue", "oracle",
// or "static-<tier>" with the tier names of Tiers() ("static-edge" is
// accepted for "static-ground-edge").
func PolicyByName(name string) (Policy, error) {
	if rest, ok := strings.CutPrefix(name, "static-"); ok {
		if rest == "edge" {
			rest = "ground-edge"
		}
		for t := Tier(0); t < NumTiers; t++ {
			if tierNames[t] == rest {
				return Policy{Kind: Static, StaticTier: t}, nil
			}
		}
		return Policy{}, fmt.Errorf("placement: unknown static tier %q", rest)
	}
	k, err := KindByName(name)
	if err != nil || k == Static {
		return Policy{}, fmt.Errorf("placement: unknown policy %q (want static-<tier>, greedy, queue, or oracle)", name)
	}
	return Policy{Kind: k}, nil
}

// Policy is a placement strategy.
type Policy struct {
	Kind Kind
	// StaticTier is the fixed destination for the Static kind.
	StaticTier Tier
}

// Validate reports policy errors.
func (p Policy) Validate() error {
	if p.Kind < 0 || p.Kind >= numKinds {
		return fmt.Errorf("placement: invalid policy kind %d", int(p.Kind))
	}
	if p.Kind == Static && !p.StaticTier.Valid() {
		return fmt.Errorf("placement: static tier %d out of range", int(p.StaticTier))
	}
	return nil
}

// State is the observable load at decision time.
type State struct {
	// QueueLen counts frames waiting or in service at each tier.
	QueueLen [NumTiers]int
}

// Decision is one routing choice.
type Decision struct {
	Tier Tier
	// EstCost is the policy's own per-frame cost estimate for the
	// chosen tier (the analytic floor for Oracle).
	EstCost float64
}

// queueWait estimates the wait a new arrival sees at a tier: backlog
// drained by the tier's servers. Unbounded tiers (Servers = 0) never
// queue.
func queueWait(tc TierCost, backlog int) float64 {
	if tc.Servers <= 0 || backlog <= 0 {
		return 0
	}
	return float64(backlog) * tc.ServiceTime / float64(tc.Servers)
}

// Decide routes one frame. Pure and deterministic: no randomness, ties
// broken toward the lowest tier index, so DES byte-identity is
// preserved for any worker or shard count.
func (p Policy) Decide(m Model, st State) Decision {
	switch p.Kind {
	case Static:
		return Decision{Tier: p.StaticTier, EstCost: m.StaticCost(p.StaticTier)}
	case QueueAware:
		best, bestCost := Tier(0), math.Inf(1)
		for t := Tier(0); t < NumTiers; t++ {
			c := m.StaticCost(t) + m.LatencyWeight*queueWait(m.Tiers[t], st.QueueLen[t])
			if c < bestCost {
				best, bestCost = t, c
			}
		}
		return Decision{Tier: best, EstCost: bestCost}
	case Oracle:
		best, bestCost := Tier(0), math.Inf(1)
		for t := Tier(0); t < NumTiers; t++ {
			if c := m.StaticCost(t); c < bestCost {
				best, bestCost = t, c
			}
		}
		return Decision{Tier: best, EstCost: bestCost}
	default: // GreedyCost
		best, bestCost := Tier(0), math.Inf(1)
		for t := Tier(0); t < NumTiers; t++ {
			if c := m.StaticCost(t); c < bestCost {
				best, bestCost = t, c
			}
		}
		return Decision{Tier: best, EstCost: bestCost}
	}
}

// Config is the DES-facing placement configuration: the policy, the
// priced model it consults, and the ground-path mechanics the simulator
// needs to replay downlink contention.
type Config struct {
	Policy Policy
	Model  Model
	// DownlinkRate is the constellation-aggregate deliverable downlink
	// rate ground-bound frames share (split evenly across topology
	// cells).
	DownlinkRate units.DataRate
	// AccessDelay is the mean wait for a usable ground-station pass,
	// applied to every ground-bound frame before transmission.
	AccessDelay time.Duration
	// WANDelay is the extra backhaul latency cloud-bound frames pay on
	// top of the ground-edge path.
	WANDelay time.Duration
	// EdgeServers is the ground-edge tier's finite server pool.
	EdgeServers int
	// Compression is applied on board before downlink, shrinking the
	// transmitted bits by its ratio. The zero value means uncompressed.
	Compression compress.Algorithm
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	if c == nil {
		return nil
	}
	if err := c.Policy.Validate(); err != nil {
		return err
	}
	if err := c.Model.Validate(); err != nil {
		return err
	}
	if c.DownlinkRate <= 0 {
		return errors.New("placement: downlink rate must be positive")
	}
	if c.AccessDelay < 0 || c.WANDelay < 0 {
		return errors.New("placement: negative delay")
	}
	if c.EdgeServers < 1 {
		return errors.New("placement: need at least one edge server")
	}
	if c.Compression.Name != "" {
		if err := c.Compression.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Ratio is the effective compression ratio (1 when unconfigured).
func (c *Config) Ratio() float64 {
	if c == nil || c.Compression.Name == "" || c.Compression.Ratio < 1 {
		return 1
	}
	return c.Compression.Ratio
}

// Scenario derives a priced four-tier model from the repo's existing
// cost anchors, for one application stream.
type Scenario struct {
	App   workload.App
	Orbit orbit.Orbit
	// FramesPerMinute and Satellites define the offered stream the
	// space tier's TCO is amortized over.
	FramesPerMinute float64
	Satellites      int
	// SpacePower is the SµDC compute budget; Workers its GPU count.
	SpacePower units.Power
	Workers    int
	// ISLRate is the crosslink rate to the SµDC.
	ISLRate units.DataRate
	// Downlink is the shared ground-station network.
	Downlink downlink.Network
	// Compression is applied before downlink (zero value = raw).
	Compression compress.Algorithm
	// EdgeServers is the ground-edge GPU pool size.
	EdgeServers int
	// LatencyWeight is the latency price in $/frame-second.
	LatencyWeight float64

	// OnboardPower is the flight computer's compute budget (default
	// 40 W) and OnboardDerate its efficiency relative to the SµDC GPU
	// (default 0.25 — embedded silicon, no radiator).
	OnboardPower  units.Power
	OnboardDerate float64
	// OnboardUnitCost is the flight computer's amortizable unit cost
	// (default $80k).
	OnboardUnitCost units.Dollars

	// CloudDollarsPerGPUHour is the rented GPU price the cloud tier's
	// $/frame derives from (default $2.0/h, grossed up by the
	// terrestrial server TCO share). EdgePremium scales it for the
	// ground-edge site (default 1.8×).
	CloudDollarsPerGPUHour float64
	EdgePremium            float64
	// DownlinkDollarsPerGB is the ground-station network's price for
	// delivering one gigabyte (default $5/GB, the going rate for
	// pay-per-use EO downlink). Every ground-bound frame pays it on its
	// transmitted (post-compression) bits — the bent pipe's data bill,
	// and the demand-side reason computing in space can win.
	DownlinkDollarsPerGB float64
	// WANDelay is the ground-station-to-cloud backhaul (default 60 ms).
	WANDelay time.Duration
}

// Scenario defaults.
const (
	defaultOnboardPower    = units.Power(40)
	defaultOnboardDerate   = 0.25
	defaultOnboardUnitCost = units.Dollars(80e3)
	defaultCloudGPUHour    = 2.0
	defaultEdgePremium     = 1.8
	defaultDownlinkPerGB   = 5.0
	defaultWANDelay        = 60 * time.Millisecond
	// electricity price charged for receiver-side decompression.
	dollarsPerJoule = 0.10 / 3.6e6 // $0.10/kWh
)

// DefaultScenario is the reference placement scenario: the paper's
// 64-satellite EO constellation imaging at 6 frames/min, a 4 kW SµDC
// with enough GPUs to absorb the stream, the default 3-station
// X-band network, and a latency price of 1e-4 $/frame-second.
func DefaultScenario(app workload.App) Scenario {
	power := units.KW(4)
	return Scenario{
		App:             app,
		Orbit:           orbit.DefaultEO,
		FramesPerMinute: 6,
		Satellites:      64,
		SpacePower:      power,
		Workers:         int(float64(power) / float64(app.GPUPower)),
		ISLRate:         100 * units.Gbps,
		Downlink:        downlink.DefaultNetwork,
		EdgeServers:     8,
		LatencyWeight:   1e-4,
	}
}

// withDefaults fills zero-valued optional fields.
func (s Scenario) withDefaults() Scenario {
	if s.OnboardPower == 0 {
		s.OnboardPower = defaultOnboardPower
	}
	if s.OnboardDerate == 0 {
		s.OnboardDerate = defaultOnboardDerate
	}
	if s.OnboardUnitCost == 0 {
		s.OnboardUnitCost = defaultOnboardUnitCost
	}
	if s.CloudDollarsPerGPUHour == 0 {
		s.CloudDollarsPerGPUHour = defaultCloudGPUHour
	}
	if s.EdgePremium == 0 {
		s.EdgePremium = defaultEdgePremium
	}
	if s.DownlinkDollarsPerGB == 0 {
		s.DownlinkDollarsPerGB = defaultDownlinkPerGB
	}
	if s.WANDelay == 0 {
		s.WANDelay = defaultWANDelay
	}
	return s
}

// Validate reports scenario errors.
func (s Scenario) Validate() error {
	if err := s.App.Validate(); err != nil {
		return err
	}
	switch {
	case s.FramesPerMinute <= 0:
		return errors.New("placement: frames/minute must be positive")
	case s.Satellites < 1:
		return errors.New("placement: need at least one satellite")
	case s.SpacePower <= 0:
		return errors.New("placement: space power must be positive")
	case s.Workers < 1:
		return errors.New("placement: need at least one space worker")
	case s.ISLRate <= 0:
		return errors.New("placement: ISL rate must be positive")
	case s.EdgeServers < 1:
		return errors.New("placement: need at least one edge server")
	case s.LatencyWeight < 0:
		return errors.New("placement: negative latency weight")
	}
	return s.Downlink.Validate()
}

// gpuSeconds is the unloaded per-frame compute time on the app's
// reference GPU.
func (s Scenario) gpuSeconds() float64 {
	return s.App.FrameMPixels * 1e6 / (s.App.KPixelPerJoule * 1e3 * float64(s.App.GPUPower))
}

// Model prices the four tiers from the repo's cost anchors: the SµDC
// TCO closure for space, the bent-pipe downlink budget plus the
// terrestrial server-share gross-up for the ground, and a derated
// flight computer for onboard.
func (s Scenario) Model() (Model, error) {
	s = s.withDefaults()
	if err := s.Validate(); err != nil {
		return Model{}, err
	}
	var m Model
	m.LatencyWeight = s.LatencyWeight

	frameRate := s.FramesPerMinute / 60 * float64(s.Satellites) // frames/s offered
	coreCfg := core.DefaultConfig(s.SpacePower)
	lifetimeSec := coreCfg.Lifetime.Seconds()
	gpuSec := s.gpuSeconds()

	// Onboard: the satellite's own flight computer — zero transport,
	// derated embedded compute, unit cost amortized over the frames one
	// satellite captures in a mission lifetime.
	onboardPixSec := s.OnboardDerate * s.App.KPixelPerJoule * 1e3 * float64(s.OnboardPower)
	perSatFrames := s.FramesPerMinute / 60 * lifetimeSec
	m.Tiers[TierOnboard] = TierCost{
		DollarsPerFrame: float64(s.OnboardUnitCost) / perSatFrames,
		TransportDelay:  0,
		ServiceTime:     s.App.FrameMPixels * 1e6 / onboardPixSec,
		Servers:         s.Satellites,
	}

	// Space: the SµDC TCO amortized over the constellation's offered
	// frame stream — demand amortization is what creates the
	// traffic-intensity crossover.
	tco, err := coreCfg.TCO()
	if err != nil {
		return Model{}, err
	}
	m.Tiers[TierSpace] = TierCost{
		DollarsPerFrame: float64(tco) / (frameRate * lifetimeSec),
		TransportDelay:  s.App.FrameBits() / float64(s.ISLRate),
		ServiceTime:     gpuSec,
		Servers:         s.Workers,
	}

	// Ground path: the bent-pipe budget gives access + drain latency for
	// the (possibly compressed) stream; decode energy at the receiver is
	// charged at grid electricity prices.
	dlApp := s.App
	ratio := 1.0
	decodeDollars := 0.0
	if s.Compression.Name != "" {
		if err := s.Compression.Validate(); err != nil {
			return Model{}, err
		}
		ratio = s.Compression.Ratio
		dlApp.FrameMPixels /= ratio
		decodeDollars = s.App.FrameBits() * s.Compression.DecodeEnergyPerBit * dollarsPerJoule
	}
	budget, err := downlink.Plan(s.Orbit, s.Downlink, dlApp, s.FramesPerMinute, s.Satellites)
	if err != nil {
		return Model{}, err
	}

	// Every ground-bound frame pays the downlink data bill on its
	// transmitted (post-compression) bits.
	dlDollars := s.App.FrameBits() / ratio / 8e9 * s.DownlinkDollarsPerGB

	// Cloud: rented GPU seconds grossed up by the terrestrial server
	// TCO share (renting a server implicitly buys its share of the
	// facility), elastic capacity, WAN on top of the downlink.
	cloudCompute := gpuSec*s.CloudDollarsPerGPUHour/3600/terrestrial.Hardy.Share(terrestrial.Servers) + decodeDollars
	m.Tiers[TierCloud] = TierCost{
		DollarsPerFrame: cloudCompute + dlDollars,
		TransportDelay:  budget.MeanLatency + s.WANDelay.Seconds(),
		ServiceTime:     gpuSec,
		Servers:         0,
	}

	// Ground edge: the same stream terminated at the station — no WAN,
	// but a finite premium-priced GPU pool.
	m.Tiers[TierGroundEdge] = TierCost{
		DollarsPerFrame: cloudCompute*s.EdgePremium + dlDollars,
		TransportDelay:  budget.MeanLatency,
		ServiceTime:     gpuSec,
		Servers:         s.EdgeServers,
	}
	return m, nil
}

// Config lowers the scenario into the DES-facing configuration for the
// given policy.
func (s Scenario) Config(p Policy) (*Config, error) {
	s = s.withDefaults()
	m, err := s.Model()
	if err != nil {
		return nil, err
	}
	dlApp := s.App
	if s.Compression.Name != "" {
		dlApp.FrameMPixels /= s.Compression.Ratio
	}
	budget, err := downlink.Plan(s.Orbit, s.Downlink, dlApp, s.FramesPerMinute, s.Satellites)
	if err != nil {
		return nil, err
	}
	rate := budget.DeliverableRate
	if offered := budget.OfferedRate; offered < rate {
		// An underloaded network still serves each frame at the station
		// rate; the deliverable cap only binds under contention.
		rate = offered
	}
	if rate <= 0 {
		rate = s.Downlink.Station.Rate
	}
	return &Config{
		Policy:       p,
		Model:        m,
		DownlinkRate: rate,
		AccessDelay:  time.Duration(budget.MeanGapToPass / 2 * float64(time.Second)),
		WANDelay:     s.WANDelay,
		EdgeServers:  s.EdgeServers,
		Compression:  s.Compression,
	}, nil
}

// MMcWait returns the mean queueing delay (excluding service) of an
// M/M/c queue with arrival rate lambda, per-server service rate mu, and
// c servers — the Erlang-C formula. It returns +Inf for an unstable
// queue (lambda ≥ c·mu) and is the analytic anchor the E11 experiment
// cross-checks the DES against at low load.
func MMcWait(lambda, mu float64, c int) float64 {
	if lambda < 0 || mu <= 0 || c < 1 {
		return math.NaN()
	}
	if lambda == 0 {
		return 0
	}
	a := lambda / mu // offered load in Erlangs
	if a >= float64(c) {
		return math.Inf(1)
	}
	// Erlang-C via the numerically stable recurrence on the Erlang-B
	// blocking probability: B(0)=1, B(k)=a·B(k−1)/(k+a·B(k−1)).
	b := 1.0
	for k := 1; k <= c; k++ {
		b = a * b / (float64(k) + a*b)
	}
	rho := a / float64(c)
	pw := b / (1 - rho + rho*b) // probability an arrival waits
	return pw / (float64(c)*mu - lambda)
}
