package placement

import (
	"math"
	"testing"
	"time"

	"sudc/internal/compress"
	"sudc/internal/units"
	"sudc/internal/workload"
)

// testModel is a hand-priced model with a clear ordering: onboard is
// cheapest but slow, cloud is cheap but far, edge is expensive, space
// sits in the middle.
func testModel() Model {
	return Model{
		LatencyWeight: 1e-3,
		Tiers: [NumTiers]TierCost{
			TierOnboard:    {DollarsPerFrame: 0.001, TransportDelay: 0, ServiceTime: 10, Servers: 4},
			TierSpace:      {DollarsPerFrame: 0.010, TransportDelay: 0.1, ServiceTime: 1, Servers: 8},
			TierGroundEdge: {DollarsPerFrame: 0.050, TransportDelay: 30, ServiceTime: 1, Servers: 2},
			TierCloud:      {DollarsPerFrame: 0.020, TransportDelay: 60, ServiceTime: 1, Servers: 0},
		},
	}
}

func TestTierNames(t *testing.T) {
	want := []string{"onboard", "space", "ground-edge", "cloud"}
	for i, tier := range Tiers() {
		if tier.String() != want[i] {
			t.Errorf("tier %d = %q, want %q", i, tier.String(), want[i])
		}
		if !tier.Valid() {
			t.Errorf("tier %v must be valid", tier)
		}
	}
	if Tier(-1).Valid() || NumTiers.Valid() {
		t.Error("out-of-range tiers must be invalid")
	}
}

func TestModelValidate(t *testing.T) {
	if err := testModel().Validate(); err != nil {
		t.Fatalf("valid model rejected: %v", err)
	}
	bad := testModel()
	bad.LatencyWeight = -1
	if bad.Validate() == nil {
		t.Error("negative latency weight accepted")
	}
	bad = testModel()
	bad.Tiers[TierSpace].ServiceTime = 0
	if bad.Validate() == nil {
		t.Error("zero service time accepted")
	}
	bad = testModel()
	bad.Tiers[TierCloud].DollarsPerFrame = -0.01
	if bad.Validate() == nil {
		t.Error("negative $/frame accepted")
	}
	bad = testModel()
	bad.Tiers[TierGroundEdge].Servers = -1
	if bad.Validate() == nil {
		t.Error("negative server count accepted")
	}
}

func TestOracleCostIsMinStaticCost(t *testing.T) {
	m := testModel()
	oracle := m.OracleCost()
	best := math.Inf(1)
	for _, tier := range Tiers() {
		if c := m.StaticCost(tier); c < best {
			best = c
		}
		if oracle > m.StaticCost(tier)+1e-15 {
			t.Errorf("oracle %v exceeds static cost of %v (%v)", oracle, tier, m.StaticCost(tier))
		}
	}
	if oracle != best {
		t.Errorf("oracle %v != min static cost %v", oracle, best)
	}
}

func TestDecideDeterministicAndValid(t *testing.T) {
	m := testModel()
	st := State{QueueLen: [NumTiers]int{3, 1, 7, 0}}
	for _, k := range Kinds() {
		p := Policy{Kind: k, StaticTier: TierSpace}
		d1 := p.Decide(m, st)
		d2 := p.Decide(m, st)
		if d1 != d2 {
			t.Errorf("%v: Decide not deterministic: %+v vs %+v", k, d1, d2)
		}
		if !d1.Tier.Valid() {
			t.Errorf("%v: invalid tier %d", k, int(d1.Tier))
		}
	}
}

func TestDecideTieBreaksLowestTier(t *testing.T) {
	// All tiers identical: every argmin policy must pick tier 0.
	var m Model
	for i := range m.Tiers {
		m.Tiers[i] = TierCost{DollarsPerFrame: 1, ServiceTime: 1}
	}
	for _, k := range []Kind{GreedyCost, QueueAware, Oracle} {
		if d := (Policy{Kind: k}).Decide(m, State{}); d.Tier != TierOnboard {
			t.Errorf("%v: tie broke to %v, want %v", k, d.Tier, TierOnboard)
		}
	}
}

func TestStaticPolicyRoutesFixedTier(t *testing.T) {
	m := testModel()
	for _, tier := range Tiers() {
		p := Policy{Kind: Static, StaticTier: tier}
		d := p.Decide(m, State{})
		if d.Tier != tier {
			t.Errorf("static-to-%v routed to %v", tier, d.Tier)
		}
		if d.EstCost != m.StaticCost(tier) {
			t.Errorf("static-to-%v cost %v, want %v", tier, d.EstCost, m.StaticCost(tier))
		}
	}
}

func TestQueueAwareAvoidsBackloggedTier(t *testing.T) {
	m := testModel()
	// Greedy picks the global static argmin regardless of load.
	greedy := (Policy{Kind: GreedyCost}).Decide(m, State{}).Tier
	// Pile a deep backlog onto the greedy choice: queue-aware must
	// route elsewhere once the estimated wait dominates.
	var st State
	st.QueueLen[greedy] = 1 << 20
	d := (Policy{Kind: QueueAware}).Decide(m, st)
	if d.Tier == greedy {
		t.Errorf("queue-aware stayed on saturated tier %v", greedy)
	}
}

func TestQueueWaitUnboundedTiersNeverQueue(t *testing.T) {
	m := testModel()
	var st State
	st.QueueLen[TierCloud] = 1 << 20
	d := (Policy{Kind: QueueAware}).Decide(m, st)
	// Cloud has Servers == 0 (elastic): its estimated wait stays zero,
	// so a huge cloud backlog must not change its cost.
	cloudCost := m.StaticCost(TierCloud)
	if got := m.StaticCost(TierCloud) + m.LatencyWeight*queueWait(m.Tiers[TierCloud], st.QueueLen[TierCloud]); got != cloudCost {
		t.Errorf("elastic cloud accrued queue wait: %v vs %v", got, cloudCost)
	}
	if !d.Tier.Valid() {
		t.Errorf("invalid tier %d", int(d.Tier))
	}
}

func TestKindByName(t *testing.T) {
	for _, k := range Kinds() {
		got, err := KindByName(k.String())
		if err != nil || got != k {
			t.Errorf("KindByName(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := KindByName("nope"); err == nil {
		t.Error("unknown policy name accepted")
	}
}

func TestPolicyByName(t *testing.T) {
	for name, want := range map[string]Policy{
		"greedy":             {Kind: GreedyCost},
		"queue":              {Kind: QueueAware},
		"oracle":             {Kind: Oracle},
		"static-onboard":     {Kind: Static, StaticTier: TierOnboard},
		"static-space":       {Kind: Static, StaticTier: TierSpace},
		"static-edge":        {Kind: Static, StaticTier: TierGroundEdge},
		"static-ground-edge": {Kind: Static, StaticTier: TierGroundEdge},
		"static-cloud":       {Kind: Static, StaticTier: TierCloud},
	} {
		got, err := PolicyByName(name)
		if err != nil || got != want {
			t.Errorf("PolicyByName(%q) = %+v, %v; want %+v", name, got, err, want)
		}
	}
	for _, bad := range []string{"", "static", "static-moon", "random"} {
		if _, err := PolicyByName(bad); err == nil {
			t.Errorf("PolicyByName(%q) accepted", bad)
		}
	}
}

func TestPolicyValidate(t *testing.T) {
	if err := (Policy{Kind: Static, StaticTier: TierCloud}).Validate(); err != nil {
		t.Errorf("valid policy rejected: %v", err)
	}
	if (Policy{Kind: numKinds}).Validate() == nil {
		t.Error("out-of-range kind accepted")
	}
	if (Policy{Kind: Static, StaticTier: NumTiers}).Validate() == nil {
		t.Error("out-of-range static tier accepted")
	}
}

func TestScenarioModel(t *testing.T) {
	s := DefaultScenario(workload.Suite[0])
	m, err := s.Model()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("derived model invalid: %v", err)
	}
	// The derated onboard computer must be slower than the SµDC GPU.
	if m.Tiers[TierOnboard].ServiceTime <= m.Tiers[TierSpace].ServiceTime {
		t.Errorf("onboard service %v not slower than space %v",
			m.Tiers[TierOnboard].ServiceTime, m.Tiers[TierSpace].ServiceTime)
	}
	// Ground tiers pay the bent-pipe latency; space pays only the ISL.
	if m.Tiers[TierCloud].TransportDelay <= m.Tiers[TierSpace].TransportDelay {
		t.Errorf("cloud transport %v not above space transport %v",
			m.Tiers[TierCloud].TransportDelay, m.Tiers[TierSpace].TransportDelay)
	}
	// The WAN puts the cloud strictly behind the edge.
	if m.Tiers[TierCloud].TransportDelay <= m.Tiers[TierGroundEdge].TransportDelay {
		t.Error("cloud transport must exceed ground-edge transport")
	}
	// The edge premium prices the edge above the cloud per frame.
	if m.Tiers[TierGroundEdge].DollarsPerFrame <= m.Tiers[TierCloud].DollarsPerFrame {
		t.Error("ground-edge $/frame must exceed cloud $/frame")
	}
}

func TestScenarioCompressionShrinksDownlinkLatency(t *testing.T) {
	raw := DefaultScenario(workload.Suite[0])
	zipped := raw
	zipped.Compression = compress.Neural
	mRaw, err := raw.Model()
	if err != nil {
		t.Fatal(err)
	}
	mZip, err := zipped.Model()
	if err != nil {
		t.Fatal(err)
	}
	if mZip.Tiers[TierCloud].TransportDelay >= mRaw.Tiers[TierCloud].TransportDelay {
		t.Errorf("4:1 compression did not cut cloud transport: %v vs %v",
			mZip.Tiers[TierCloud].TransportDelay, mRaw.Tiers[TierCloud].TransportDelay)
	}
	// The downlink data bill shrinks with the transmitted bits and
	// dwarfs the decode energy, so the compressed frame is cheaper.
	if mZip.Tiers[TierCloud].DollarsPerFrame >= mRaw.Tiers[TierCloud].DollarsPerFrame {
		t.Error("4:1 compression must cut the cloud $/frame via the downlink bill")
	}
}

func TestScenarioSpaceAmortization(t *testing.T) {
	// The space tier's $/frame amortizes a fixed TCO over the offered
	// stream: doubling traffic must halve it.
	lo := DefaultScenario(workload.Suite[0])
	hi := lo
	hi.FramesPerMinute *= 2
	mLo, err := lo.Model()
	if err != nil {
		t.Fatal(err)
	}
	mHi, err := hi.Model()
	if err != nil {
		t.Fatal(err)
	}
	ratio := mLo.Tiers[TierSpace].DollarsPerFrame / mHi.Tiers[TierSpace].DollarsPerFrame
	if !units.ApproxEqual(ratio, 2, 1e-9) {
		t.Errorf("space $/frame amortization ratio %v, want 2", ratio)
	}
}

func TestScenarioValidate(t *testing.T) {
	bad := DefaultScenario(workload.Suite[0])
	bad.FramesPerMinute = 0
	if _, err := bad.Model(); err == nil {
		t.Error("zero frame rate accepted")
	}
	bad = DefaultScenario(workload.Suite[0])
	bad.Satellites = 0
	if _, err := bad.Model(); err == nil {
		t.Error("zero satellites accepted")
	}
	bad = DefaultScenario(workload.Suite[0])
	bad.Workers = 0
	if _, err := bad.Model(); err == nil {
		t.Error("zero space workers accepted")
	}
}

func TestScenarioConfig(t *testing.T) {
	s := DefaultScenario(workload.Suite[0])
	cfg, err := s.Config(Policy{Kind: GreedyCost})
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("derived config invalid: %v", err)
	}
	if cfg.DownlinkRate <= 0 {
		t.Error("non-positive downlink rate")
	}
	if cfg.AccessDelay <= 0 {
		t.Error("non-positive access delay")
	}
	var nilCfg *Config
	if err := nilCfg.Validate(); err != nil {
		t.Errorf("nil config must validate clean: %v", err)
	}
	if nilCfg.Ratio() != 1 {
		t.Error("nil config ratio must be 1")
	}
}

func TestConfigValidateErrors(t *testing.T) {
	base := Config{
		Policy:       Policy{Kind: GreedyCost},
		Model:        testModel(),
		DownlinkRate: units.GbpsOf(1),
		AccessDelay:  time.Minute,
		EdgeServers:  4,
	}
	if err := base.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := base
	bad.DownlinkRate = 0
	if bad.Validate() == nil {
		t.Error("zero downlink rate accepted")
	}
	bad = base
	bad.AccessDelay = -time.Second
	if bad.Validate() == nil {
		t.Error("negative access delay accepted")
	}
	bad = base
	bad.EdgeServers = 0
	if bad.Validate() == nil {
		t.Error("zero edge servers accepted")
	}
	bad = base
	bad.Compression = compress.Algorithm{Name: "bad", Ratio: 0.5}
	if bad.Validate() == nil {
		t.Error("sub-unity compression ratio accepted")
	}
}

func TestMMcWait(t *testing.T) {
	// M/M/1 closed form: W_q = rho / (mu - lambda).
	lambda, mu := 0.5, 1.0
	want := (lambda / mu) / (mu - lambda)
	if got := MMcWait(lambda, mu, 1); !units.ApproxEqual(got, want, 1e-12) {
		t.Errorf("M/M/1 wait %v, want %v", got, want)
	}
	// Erlang-C anchor: c=2, a=1 (rho=0.5) → P(wait)=1/3, W_q=1/3.
	if got := MMcWait(1, 1, 2); !units.ApproxEqual(got, 1.0/3, 1e-12) {
		t.Errorf("M/M/2 wait %v, want 1/3", got)
	}
	if !math.IsInf(MMcWait(2, 1, 2), 1) {
		t.Error("unstable queue must return +Inf")
	}
	if MMcWait(0, 1, 3) != 0 {
		t.Error("empty arrival stream must wait 0")
	}
	if !math.IsNaN(MMcWait(1, 0, 1)) || !math.IsNaN(MMcWait(-1, 1, 1)) || !math.IsNaN(MMcWait(1, 1, 0)) {
		t.Error("invalid arguments must return NaN")
	}
	// Waits shrink monotonically in the server count.
	prev := math.Inf(1)
	for c := 1; c <= 8; c++ {
		w := MMcWait(0.9, 1, c)
		if w > prev {
			t.Errorf("wait increased adding a server: c=%d %v > %v", c, w, prev)
		}
		prev = w
	}
}
