package workload

import (
	"strings"
	"testing"

	"sudc/internal/units"
)

func TestSuiteMatchesTableIII(t *testing.T) {
	if len(Suite) != 10 {
		t.Fatalf("suite has %d apps, want 10 (Table III)", len(Suite))
	}
	// Spot-check the published rows.
	flood, err := ByName("Flood Detection")
	if err != nil {
		t.Fatal(err)
	}
	if flood.GPUPower != 325 || flood.GPUUtilization != 0.88 ||
		flood.InferTime != 5.53 || flood.KPixelPerJoule != 307 {
		t.Errorf("Flood Detection row mismatch: %+v", flood)
	}
	traffic, _ := ByName("Traffic Monitoring")
	if traffic.KPixelPerJoule != 2597 {
		t.Errorf("Traffic Monitoring kpixel/J = %v, want 2597", traffic.KPixelPerJoule)
	}
}

func TestSuiteAllValid(t *testing.T) {
	for _, a := range Suite {
		if err := a.Validate(); err != nil {
			t.Errorf("%s: %v", a.Name, err)
		}
	}
}

func TestValidateCatchesBadRows(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*App)
	}{
		{"empty name", func(a *App) { a.Name = "" }},
		{"zero power", func(a *App) { a.GPUPower = 0 }},
		{"util > 1", func(a *App) { a.GPUUtilization = 1.5 }},
		{"zero time", func(a *App) { a.InferTime = 0 }},
		{"zero kpixJ", func(a *App) { a.KPixelPerJoule = 0 }},
		{"zero frame", func(a *App) { a.FrameMPixels = 0 }},
	}
	for _, tt := range tests {
		a := Suite[0]
		tt.mutate(&a)
		if err := a.Validate(); err == nil {
			t.Errorf("%s: expected validation error", tt.name)
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("Whale Counting"); err == nil {
		t.Error("unknown app must error")
	}
}

func TestLightestIsTrafficMonitoring(t *testing.T) {
	if got := Lightest().Name; got != "Traffic Monitoring" {
		t.Errorf("lightest app = %q, want Traffic Monitoring (2597 kpixel/J)", got)
	}
}

func TestSaturationRateAnchor(t *testing.T) {
	// Paper Fig. 8 anchor: "a 500 W SµDC needs no more than 25 Gbit/s ISL
	// to support even the most lightweight applications."
	r, err := Lightest().SaturationRate(units.KW(0.5))
	if err != nil {
		t.Fatal(err)
	}
	if g := r.Gigabits(); g > 25 || g < 15 {
		t.Errorf("lightest-app saturation at 500 W = %.1f Gbit/s, want (15,25]", g)
	}
	// Every other app needs less.
	for _, a := range Suite {
		ra, err := a.SaturationRate(units.KW(0.5))
		if err != nil {
			t.Fatal(err)
		}
		if ra > r {
			t.Errorf("%s needs %.1f Gbit/s > lightest app", a.Name, ra.Gigabits())
		}
	}
}

func TestSaturationRateScalesLinearly(t *testing.T) {
	a := Suite[0]
	r1, _ := a.SaturationRate(units.KW(0.5))
	r8, _ := a.SaturationRate(units.KW(4))
	if !units.ApproxEqual(float64(r8), 8*float64(r1), 1e-12) {
		t.Error("saturation rate must be linear in compute power")
	}
}

func TestSaturationRateNegativeBudget(t *testing.T) {
	if _, err := Suite[0].SaturationRate(units.Power(-1)); err == nil {
		t.Error("negative budget must error")
	}
}

func TestEnergyPerFrame(t *testing.T) {
	// Air Pollution: 45 Mpix / 1168 kpix/J ≈ 38.5 J per frame.
	a, _ := ByName("Air Pollution")
	e := a.EnergyPerFrame().Joules()
	if !units.ApproxEqual(e, 45e3/1168, 1e-9) {
		t.Errorf("energy/frame = %v J, want %v", e, 45e3/1168)
	}
	if (App{}).EnergyPerFrame() != 0 {
		t.Error("zero-efficiency app must report zero energy")
	}
}

func TestFrameBits(t *testing.T) {
	a, _ := ByName("Aircraft Detection")
	want := 30e6 * 16
	if got := a.FrameBits(); got != want {
		t.Errorf("FrameBits = %v, want %v", got, want)
	}
}

func TestTaskString(t *testing.T) {
	for task, want := range map[Task]string{
		Classification: "classification", Segmentation: "segmentation",
		PanopticSeg: "panoptic", Clustering: "clustering",
		ObjectRecognition: "object", Regression: "regression",
	} {
		if !strings.Contains(task.String(), want) {
			t.Errorf("Task(%d).String() = %q, want contains %q", task, task, want)
		}
	}
	if !strings.Contains(Task(99).String(), "99") {
		t.Error("unknown task should include its number")
	}
}
