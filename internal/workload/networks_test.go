package workload

import (
	"testing"
	"testing/quick"
)

func TestAllNetworksValid(t *testing.T) {
	nets := Networks()
	if len(nets) != 9 {
		t.Fatalf("have %d networks, want 9", len(nets))
	}
	for name, n := range nets {
		if err := n.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if n.Name != name {
			t.Errorf("map key %q != network name %q", name, n.Name)
		}
	}
}

func TestEveryAppHasANetwork(t *testing.T) {
	for _, a := range Suite {
		n, err := NetworkFor(a)
		if err != nil {
			t.Errorf("%s: %v", a.Name, err)
			continue
		}
		if n.TotalMACs() <= 0 {
			t.Errorf("%s: network %s has no MACs", a.Name, n.Name)
		}
	}
}

func TestNetworkForUnknown(t *testing.T) {
	if _, err := NetworkFor(App{Name: "x", Network: "lenet-99"}); err == nil {
		t.Error("unknown network must error")
	}
}

func TestVGG16KnownCounts(t *testing.T) {
	n := VGG16()
	// VGG-16 is the classic ~15.5 GMAC / ~138 M parameter network.
	gmacs := float64(n.TotalMACs()) / 1e9
	if gmacs < 15 || gmacs > 16 {
		t.Errorf("VGG-16 = %.2f GMACs, want ≈15.5", gmacs)
	}
	mw := float64(n.TotalWeights()) / 1e6
	if mw < 130 || mw > 145 {
		t.Errorf("VGG-16 = %.1f M weights, want ≈138", mw)
	}
}

func TestResNet50KnownCounts(t *testing.T) {
	n := ResNet50()
	// ResNet-50 is ~4 GMACs, ~25 M params (conv+fc slightly above shortcut-free count).
	gmacs := float64(n.TotalMACs()) / 1e9
	if gmacs < 3.5 || gmacs > 4.8 {
		t.Errorf("ResNet-50 = %.2f GMACs, want ≈4", gmacs)
	}
	mw := float64(n.TotalWeights()) / 1e6
	if mw < 20 || mw > 30 {
		t.Errorf("ResNet-50 = %.1f M weights, want ≈25", mw)
	}
}

func TestMobileNetV2IsLight(t *testing.T) {
	n := MobileNetV2()
	// MobileNet-V2: ~0.3 GMACs, ~3.5 M params.
	gmacs := float64(n.TotalMACs()) / 1e9
	if gmacs < 0.2 || gmacs > 0.6 {
		t.Errorf("MobileNet-V2 = %.2f GMACs, want ≈0.3", gmacs)
	}
	if n.TotalMACs() >= ResNet50().TotalMACs()/5 {
		t.Error("MobileNet-V2 must be far lighter than ResNet-50")
	}
}

func TestUNetIsHeavy(t *testing.T) {
	// U-Net at 256×256 runs tens of GMACs — heavier than classification nets.
	n := UNet()
	if n.TotalMACs() < VGG16().TotalMACs() {
		t.Error("U-Net at 256² should out-MAC VGG-16 at 224²")
	}
}

func TestPanopticIsHeaviest(t *testing.T) {
	nets := Networks()
	pan := nets["panoptic-fpn"].TotalMACs()
	for name, n := range nets {
		if name == "panoptic-fpn" || name == "unet" {
			continue
		}
		if n.TotalMACs() >= pan {
			t.Errorf("%s (%d MACs) out-MACs panoptic (%d)", name, n.TotalMACs(), pan)
		}
	}
}

func TestDepthwiseAccounting(t *testing.T) {
	d := dwConv("dw", 32, 3, 3, 10, 10, 1)
	full := conv("full", 32, 32, 3, 3, 10, 10, 1)
	if d.MACs()*int64(d.C) != full.MACs() {
		t.Errorf("depthwise MACs %d × C must equal full conv %d", d.MACs(), full.MACs())
	}
	if d.Weights()*int64(d.C) != full.Weights() {
		t.Error("depthwise weights must be 1/C of full conv")
	}
}

func TestLayerValidate(t *testing.T) {
	good := conv("ok", 3, 8, 3, 3, 10, 10, 1)
	if err := good.Validate(); err != nil {
		t.Error(err)
	}
	bad := good
	bad.K = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero K must error")
	}
	dwBad := dwConv("dw", 8, 3, 3, 10, 10, 1)
	dwBad.K = 4
	if err := dwBad.Validate(); err == nil {
		t.Error("depthwise with C != K must error")
	}
	empty := Network{Name: "none"}
	if err := empty.Validate(); err == nil {
		t.Error("empty network must error")
	}
}

func TestInputGeometry(t *testing.T) {
	l := conv("c", 3, 8, 3, 3, 112, 112, 2)
	if l.InputH() != 225 || l.InputW() != 225 {
		t.Errorf("input = %d×%d, want 225×225", l.InputH(), l.InputW())
	}
	if l.Inputs() != 3*225*225 {
		t.Errorf("Inputs() = %d", l.Inputs())
	}
	if l.Outputs() != 8*112*112 {
		t.Errorf("Outputs() = %d", l.Outputs())
	}
}

func TestMACsPositiveProperty(t *testing.T) {
	f := func(c, k, r, p uint8) bool {
		l := conv("x", int(c%64)+1, int(k%64)+1, int(r%7)+1, int(r%7)+1, int(p%56)+1, int(p%56)+1, 1)
		return l.MACs() > 0 && l.Weights() > 0 && l.MACs() >= l.Weights()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFCLayersAreOneByOne(t *testing.T) {
	l := fc("fc", 2048, 1000)
	if l.MACs() != 2048*1000 {
		t.Errorf("fc MACs = %d, want %d", l.MACs(), 2048*1000)
	}
	if l.Inputs() != 2048 || l.Outputs() != 1000 {
		t.Error("fc geometry wrong")
	}
}
