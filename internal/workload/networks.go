package workload

import (
	"errors"
	"fmt"
)

// Layer is one convolutional (or fully-connected, R=S=P=Q=1) layer in the
// Timeloop-style 7-dimensional nested-loop notation: K output channels,
// C input channels, R×S filter, P×Q output feature map.
type Layer struct {
	Name string
	// C and K are input and output channel counts.
	C, K int
	// R and S are filter height and width.
	R, S int
	// P and Q are output feature-map height and width.
	P, Q int
	// Stride of the convolution.
	Stride int
	// Depthwise marks a depthwise convolution (one filter per channel;
	// K must equal C and per-output MACs drop by a factor of C).
	Depthwise bool
}

// Validate reports dimension errors.
func (l Layer) Validate() error {
	if l.C <= 0 || l.K <= 0 || l.R <= 0 || l.S <= 0 || l.P <= 0 || l.Q <= 0 || l.Stride <= 0 {
		return fmt.Errorf("workload: layer %q has non-positive dimension", l.Name)
	}
	if l.Depthwise && l.C != l.K {
		return fmt.Errorf("workload: depthwise layer %q must have C == K", l.Name)
	}
	return nil
}

// MACs returns multiply-accumulate operations for one inference.
func (l Layer) MACs() int64 {
	m := int64(l.K) * int64(l.R) * int64(l.S) * int64(l.P) * int64(l.Q)
	if l.Depthwise {
		return m // one input channel per output channel
	}
	return m * int64(l.C)
}

// Weights returns the layer's weight count.
func (l Layer) Weights() int64 {
	if l.Depthwise {
		return int64(l.K) * int64(l.R) * int64(l.S)
	}
	return int64(l.K) * int64(l.C) * int64(l.R) * int64(l.S)
}

// InputH and InputW give the input feature-map size implied by the output
// size, stride and filter (no-padding arithmetic: H = (P-1)·stride + R).
func (l Layer) InputH() int { return (l.P-1)*l.Stride + l.R }

// InputW mirrors InputH for width.
func (l Layer) InputW() int { return (l.Q-1)*l.Stride + l.S }

// Inputs returns the input activation count.
func (l Layer) Inputs() int64 { return int64(l.C) * int64(l.InputH()) * int64(l.InputW()) }

// Outputs returns the output activation count.
func (l Layer) Outputs() int64 { return int64(l.K) * int64(l.P) * int64(l.Q) }

// Network is a named sequence of layers (branching topologies are
// flattened: each branch's convolutions appear as consecutive layers,
// which is exact for MAC/energy accounting).
type Network struct {
	Name   string
	Task   Task
	Layers []Layer
}

// TotalMACs sums MACs over all layers.
func (n Network) TotalMACs() int64 {
	var t int64
	for _, l := range n.Layers {
		t += l.MACs()
	}
	return t
}

// TotalWeights sums weights over all layers.
func (n Network) TotalWeights() int64 {
	var t int64
	for _, l := range n.Layers {
		t += l.Weights()
	}
	return t
}

// Validate validates every layer.
func (n Network) Validate() error {
	if len(n.Layers) == 0 {
		return fmt.Errorf("workload: network %q has no layers", n.Name)
	}
	for _, l := range n.Layers {
		if err := l.Validate(); err != nil {
			return fmt.Errorf("%s: %w", n.Name, err)
		}
	}
	return nil
}

func conv(name string, c, k, r, s, p, q, stride int) Layer {
	return Layer{Name: name, C: c, K: k, R: r, S: s, P: p, Q: q, Stride: stride}
}

func dwConv(name string, c, r, s, p, q, stride int) Layer {
	return Layer{Name: name, C: c, K: c, R: r, S: s, P: p, Q: q, Stride: stride, Depthwise: true}
}

func fc(name string, c, k int) Layer {
	return Layer{Name: name, C: c, K: k, R: 1, S: 1, P: 1, Q: 1, Stride: 1}
}

// VGG16 builds the 13-conv + 3-FC VGG-16 network at 224×224 input.
func VGG16() Network {
	mk := func(stage, idx, c, k, hw int) Layer {
		return conv(fmt.Sprintf("conv%d_%d", stage, idx), c, k, 3, 3, hw, hw, 1)
	}
	return Network{Name: "vgg-16", Task: Classification, Layers: []Layer{
		mk(1, 1, 3, 64, 224), mk(1, 2, 64, 64, 224),
		mk(2, 1, 64, 128, 112), mk(2, 2, 128, 128, 112),
		mk(3, 1, 128, 256, 56), mk(3, 2, 256, 256, 56), mk(3, 3, 256, 256, 56),
		mk(4, 1, 256, 512, 28), mk(4, 2, 512, 512, 28), mk(4, 3, 512, 512, 28),
		mk(5, 1, 512, 512, 14), mk(5, 2, 512, 512, 14), mk(5, 3, 512, 512, 14),
		fc("fc6", 512*7*7, 4096), fc("fc7", 4096, 4096), fc("fc8", 4096, 1000),
	}}
}

// resNetStage appends n bottleneck (or basic) blocks.
func resNetBottleneck(layers []Layer, stage string, cIn, mid, cOut, hw, n int, firstStride int) []Layer {
	for b := 0; b < n; b++ {
		stride := 1
		inC := cOut
		if b == 0 {
			stride = firstStride
			inC = cIn
			// projection shortcut
			layers = append(layers, conv(stage+"_proj", inC, cOut, 1, 1, hw, hw, stride))
		}
		layers = append(layers,
			conv(fmt.Sprintf("%s_b%d_1x1a", stage, b), inC, mid, 1, 1, hw, hw, stride),
			conv(fmt.Sprintf("%s_b%d_3x3", stage, b), mid, mid, 3, 3, hw, hw, 1),
			conv(fmt.Sprintf("%s_b%d_1x1b", stage, b), mid, cOut, 1, 1, hw, hw, 1),
		)
	}
	return layers
}

// ResNet50 builds ResNet-50 at 224×224 input.
func ResNet50() Network {
	layers := []Layer{conv("conv1", 3, 64, 7, 7, 112, 112, 2)}
	layers = resNetBottleneck(layers, "res2", 64, 64, 256, 56, 3, 1)
	layers = resNetBottleneck(layers, "res3", 256, 128, 512, 28, 4, 2)
	layers = resNetBottleneck(layers, "res4", 512, 256, 1024, 14, 6, 2)
	layers = resNetBottleneck(layers, "res5", 1024, 512, 2048, 7, 3, 2)
	layers = append(layers, fc("fc1000", 2048, 1000))
	return Network{Name: "resnet-50", Task: Regression, Layers: layers}
}

// ResNet18 builds ResNet-18 (basic blocks) at 224×224 input.
func ResNet18() Network {
	layers := []Layer{conv("conv1", 3, 64, 7, 7, 112, 112, 2)}
	basic := func(ls []Layer, stage string, cIn, c, hw, n, firstStride int) []Layer {
		for b := 0; b < n; b++ {
			stride, inC := 1, c
			if b == 0 {
				stride, inC = firstStride, cIn
				if cIn != c {
					ls = append(ls, conv(stage+"_proj", cIn, c, 1, 1, hw, hw, stride))
				}
			}
			ls = append(ls,
				conv(fmt.Sprintf("%s_b%d_3x3a", stage, b), inC, c, 3, 3, hw, hw, stride),
				conv(fmt.Sprintf("%s_b%d_3x3b", stage, b), c, c, 3, 3, hw, hw, 1))
		}
		return ls
	}
	layers = basic(layers, "res2", 64, 64, 56, 2, 1)
	layers = basic(layers, "res3", 64, 128, 28, 2, 2)
	layers = basic(layers, "res4", 128, 256, 14, 2, 2)
	layers = basic(layers, "res5", 256, 512, 7, 2, 2)
	layers = append(layers, fc("fc1000", 512, 1000))
	return Network{Name: "resnet-18", Task: Clustering, Layers: layers}
}

// UNet builds the classic 256×256 U-Net encoder/decoder.
func UNet() Network {
	var layers []Layer
	dbl := func(stage string, c, k, hw int) {
		layers = append(layers,
			conv(stage+"_a", c, k, 3, 3, hw, hw, 1),
			conv(stage+"_b", k, k, 3, 3, hw, hw, 1))
	}
	dbl("enc1", 3, 64, 256)
	dbl("enc2", 64, 128, 128)
	dbl("enc3", 128, 256, 64)
	dbl("enc4", 256, 512, 32)
	dbl("bottleneck", 512, 1024, 16)
	// Decoder: up-convolutions then double convs on concatenated features.
	up := func(stage string, c, k, hw int) {
		layers = append(layers, conv(stage+"_up", c, k, 2, 2, hw, hw, 1))
		dbl(stage, 2*k, k, hw)
	}
	up("dec4", 1024, 512, 32)
	up("dec3", 512, 256, 64)
	up("dec2", 256, 128, 128)
	up("dec1", 128, 64, 256)
	layers = append(layers, conv("head", 64, 2, 1, 1, 256, 256, 1))
	return Network{Name: "unet", Task: Segmentation, Layers: layers}
}

// InceptionV3 builds a flattened Inception-v3 at 299×299: the full stem
// plus each inception module's branches as consecutive convolutions.
func InceptionV3() Network {
	var layers []Layer
	add := func(name string, c, k, r, s, p, q, stride int) {
		layers = append(layers, conv(name, c, k, r, s, p, q, stride))
	}
	// Stem.
	add("stem1", 3, 32, 3, 3, 149, 149, 2)
	add("stem2", 32, 32, 3, 3, 147, 147, 1)
	add("stem3", 32, 64, 3, 3, 147, 147, 1)
	add("stem4", 64, 80, 1, 1, 73, 73, 1)
	add("stem5", 80, 192, 3, 3, 71, 71, 1)
	// 3× inception-A at 35×35 (branch convs flattened).
	for i := 0; i < 3; i++ {
		p := fmt.Sprintf("incA%d", i)
		in := 288
		if i == 0 {
			in = 192
		}
		add(p+"_1x1", in, 64, 1, 1, 35, 35, 1)
		add(p+"_5x5a", in, 48, 1, 1, 35, 35, 1)
		add(p+"_5x5b", 48, 64, 5, 5, 35, 35, 1)
		add(p+"_3x3a", in, 64, 1, 1, 35, 35, 1)
		add(p+"_3x3b", 64, 96, 3, 3, 35, 35, 1)
		add(p+"_3x3c", 96, 96, 3, 3, 35, 35, 1)
		add(p+"_pool", in, 64, 1, 1, 35, 35, 1)
	}
	// Reduction-A.
	add("redA_3x3", 288, 384, 3, 3, 17, 17, 2)
	add("redA_dbl_a", 288, 64, 1, 1, 35, 35, 1)
	add("redA_dbl_b", 64, 96, 3, 3, 35, 35, 1)
	add("redA_dbl_c", 96, 96, 3, 3, 17, 17, 2)
	// 4× inception-B at 17×17 with factorized 7×7 (as 1×7 + 7×1).
	for i := 0; i < 4; i++ {
		p := fmt.Sprintf("incB%d", i)
		mid := 128 + 32*i // 128,160,160,192 in the real net; monotone stand-in
		if mid > 192 {
			mid = 192
		}
		add(p+"_1x1", 768, 192, 1, 1, 17, 17, 1)
		add(p+"_7x7a", 768, mid, 1, 1, 17, 17, 1)
		add(p+"_7x7b", mid, mid, 1, 7, 17, 17, 1)
		add(p+"_7x7c", mid, 192, 7, 1, 17, 17, 1)
		add(p+"_d7a", 768, mid, 1, 1, 17, 17, 1)
		add(p+"_d7b", mid, mid, 7, 1, 17, 17, 1)
		add(p+"_d7c", mid, mid, 1, 7, 17, 17, 1)
		add(p+"_d7d", mid, mid, 7, 1, 17, 17, 1)
		add(p+"_d7e", mid, 192, 1, 7, 17, 17, 1)
		add(p+"_pool", 768, 192, 1, 1, 17, 17, 1)
	}
	// Reduction-B.
	add("redB_a", 768, 192, 1, 1, 17, 17, 1)
	add("redB_b", 192, 320, 3, 3, 8, 8, 2)
	add("redB_c", 768, 192, 1, 1, 17, 17, 1)
	add("redB_d", 192, 192, 1, 7, 17, 17, 1)
	add("redB_e", 192, 192, 7, 1, 17, 17, 1)
	add("redB_f", 192, 192, 3, 3, 8, 8, 2)
	// 2× inception-C at 8×8.
	for i := 0; i < 2; i++ {
		p := fmt.Sprintf("incC%d", i)
		in := 2048
		if i == 0 {
			in = 1280
		}
		add(p+"_1x1", in, 320, 1, 1, 8, 8, 1)
		add(p+"_3x3a", in, 384, 1, 1, 8, 8, 1)
		add(p+"_3x3b1", 384, 384, 1, 3, 8, 8, 1)
		add(p+"_3x3b2", 384, 384, 3, 1, 8, 8, 1)
		add(p+"_d3a", in, 448, 1, 1, 8, 8, 1)
		add(p+"_d3b", 448, 384, 3, 3, 8, 8, 1)
		add(p+"_d3c1", 384, 384, 1, 3, 8, 8, 1)
		add(p+"_d3c2", 384, 384, 3, 1, 8, 8, 1)
		add(p+"_pool", in, 192, 1, 1, 8, 8, 1)
	}
	layers = append(layers, fc("fc1000", 2048, 1000))
	return Network{Name: "inception-v3", Task: Regression, Layers: layers}
}

// DenseNet121 builds DenseNet-121 (growth 32) at 224×224 with its four
// dense blocks of 6/12/24/16 layers and the intervening transitions.
func DenseNet121() Network {
	const growth = 32
	layers := []Layer{conv("conv1", 3, 64, 7, 7, 112, 112, 2)}
	ch := 64
	blocks := []int{6, 12, 24, 16}
	hw := 56
	for bi, n := range blocks {
		for li := 0; li < n; li++ {
			p := fmt.Sprintf("dense%d_%d", bi+1, li)
			layers = append(layers,
				conv(p+"_1x1", ch, 4*growth, 1, 1, hw, hw, 1),
				conv(p+"_3x3", 4*growth, growth, 3, 3, hw, hw, 1))
			ch += growth
		}
		if bi < len(blocks)-1 {
			layers = append(layers,
				conv(fmt.Sprintf("trans%d", bi+1), ch, ch/2, 1, 1, hw, hw, 1))
			ch /= 2
			hw /= 2
		}
	}
	layers = append(layers, fc("fc1000", ch, 1000))
	return Network{Name: "densenet-121", Task: Classification, Layers: layers}
}

// Darknet19 builds the Darknet-19 detection backbone at 416×416.
func Darknet19() Network {
	var layers []Layer
	add := func(name string, c, k, r, hw int) {
		layers = append(layers, conv(name, c, k, r, r, hw, hw, 1))
	}
	add("c1", 3, 32, 3, 416)
	add("c2", 32, 64, 3, 208)
	add("c3", 64, 128, 3, 104)
	add("c4", 128, 64, 1, 104)
	add("c5", 64, 128, 3, 104)
	add("c6", 128, 256, 3, 52)
	add("c7", 256, 128, 1, 52)
	add("c8", 128, 256, 3, 52)
	add("c9", 256, 512, 3, 26)
	add("c10", 512, 256, 1, 26)
	add("c11", 256, 512, 3, 26)
	add("c12", 512, 256, 1, 26)
	add("c13", 256, 512, 3, 26)
	add("c14", 512, 1024, 3, 13)
	add("c15", 1024, 512, 1, 13)
	add("c16", 512, 1024, 3, 13)
	add("c17", 1024, 512, 1, 13)
	add("c18", 512, 1024, 3, 13)
	add("c19", 1024, 425, 1, 13) // detection head
	return Network{Name: "darknet-19", Task: ObjectRecognition, Layers: layers}
}

// MobileNetV2 builds MobileNet-V2 at 224×224: inverted residual blocks of
// expand (1×1) / depthwise (3×3) / project (1×1).
func MobileNetV2() Network {
	layers := []Layer{conv("conv1", 3, 32, 3, 3, 112, 112, 2)}
	type block struct{ t, c, n, s int }
	cfg := []block{{1, 16, 1, 1}, {6, 24, 2, 2}, {6, 32, 3, 2}, {6, 64, 4, 2}, {6, 96, 3, 1}, {6, 160, 3, 2}, {6, 320, 1, 1}}
	ch, hw := 32, 112
	for bi, b := range cfg {
		for i := 0; i < b.n; i++ {
			stride := 1
			if i == 0 {
				stride = b.s
				hw /= b.s
			}
			p := fmt.Sprintf("ir%d_%d", bi+1, i)
			mid := ch * b.t
			if b.t != 1 {
				layers = append(layers, conv(p+"_expand", ch, mid, 1, 1, hw*stride/stride, hw, 1))
			}
			layers = append(layers,
				dwConv(p+"_dw", mid, 3, 3, hw, hw, stride),
				conv(p+"_project", mid, b.c, 1, 1, hw, hw, 1))
			ch = b.c
		}
	}
	layers = append(layers,
		conv("conv_last", 320, 1280, 1, 1, 7, 7, 1),
		fc("fc1000", 1280, 1000))
	return Network{Name: "mobilenet-v2", Task: ObjectRecognition, Layers: layers}
}

// PanopticFPN builds a panoptic-segmentation network: a ResNet-50 backbone
// plus FPN lateral/output convolutions and semantic + instance heads at a
// 512×512 input scale (resolutions scaled from the 224 backbone).
func PanopticFPN() Network {
	backbone := ResNet50()
	layers := make([]Layer, 0, len(backbone.Layers)+24)
	// Rescale the backbone from 224 to 512 input (×16/7 spatial).
	for _, l := range backbone.Layers {
		if l.P == 1 { // drop the classification FC
			continue
		}
		l.P = l.P * 16 / 7
		l.Q = l.Q * 16 / 7
		layers = append(layers, l)
	}
	// FPN laterals and outputs at strides 4..32.
	fpn := []struct {
		c, hw int
	}{{256, 128}, {512, 64}, {1024, 32}, {2048, 16}}
	for i, s := range fpn {
		layers = append(layers,
			conv(fmt.Sprintf("fpn_lat%d", i+2), s.c, 256, 1, 1, s.hw, s.hw, 1),
			conv(fmt.Sprintf("fpn_out%d", i+2), 256, 256, 3, 3, s.hw, s.hw, 1))
	}
	// Semantic head: 4 convs at 128×128 + upsample head.
	for i := 0; i < 4; i++ {
		layers = append(layers, conv(fmt.Sprintf("sem%d", i), 256, 256, 3, 3, 128, 128, 1))
	}
	layers = append(layers, conv("sem_logits", 256, 54, 1, 1, 128, 128, 1))
	// Instance head (RPN + box/mask convs, flattened).
	layers = append(layers,
		conv("rpn", 256, 256, 3, 3, 128, 128, 1),
		conv("rpn_cls", 256, 3, 1, 1, 128, 128, 1),
		conv("rpn_box", 256, 12, 1, 1, 128, 128, 1))
	for i := 0; i < 4; i++ {
		layers = append(layers, conv(fmt.Sprintf("mask%d", i), 256, 256, 3, 3, 14, 14, 1))
	}
	layers = append(layers, conv("mask_logits", 256, 80, 1, 1, 28, 28, 1))
	return Network{Name: "panoptic-fpn", Task: PanopticSeg, Layers: layers}
}

// Networks returns the full Figure 13 network suite keyed by name.
func Networks() map[string]Network {
	nets := []Network{
		VGG16(), ResNet50(), ResNet18(), UNet(), InceptionV3(),
		DenseNet121(), Darknet19(), MobileNetV2(), PanopticFPN(),
	}
	out := make(map[string]Network, len(nets))
	for _, n := range nets {
		out[n.Name] = n
	}
	return out
}

// NetworkFor returns the network an app runs.
func NetworkFor(a App) (Network, error) {
	n, ok := Networks()[a.Network]
	if !ok {
		return Network{}, errors.New("workload: no network " + a.Network + " for app " + a.Name)
	}
	return n, nil
}
