// Package workload defines the paper's Earth-observation application suite
// (Table III) and the convolutional neural networks behind it (Figure 13).
// The Table III rows are the paper's published RTX 3090 measurements and
// serve as the commodity-GPU baseline everywhere: ISL saturation rates
// (Fig. 8), constellation sizing (# SµDC column), and the accelerator
// design-space exploration's reference energy (Fig. 17).
package workload

import (
	"errors"
	"fmt"

	"sudc/internal/units"
)

// Task is the image-processing task class (Figure 13, middle column).
type Task int

// Task classes.
const (
	Classification Task = iota
	ObjectRecognition
	Regression
	Segmentation
	Clustering
	PanopticSeg
)

func (t Task) String() string {
	switch t {
	case Classification:
		return "image classification"
	case ObjectRecognition:
		return "object recognition"
	case Regression:
		return "image regression"
	case Segmentation:
		return "image segmentation"
	case Clustering:
		return "clustering"
	case PanopticSeg:
		return "panoptic segmentation"
	default:
		return fmt.Sprintf("Task(%d)", int(t))
	}
}

// BitsPerPixel is the raw sensor data volume per pixel crossing the ISL:
// a 12-bit sensor padded to two bytes. With this value a 500 W SµDC
// running the most lightweight app saturates at under 25 Gbit/s, matching
// the paper's Figure 8 anchor.
const BitsPerPixel = 16

// App is one row of Table III plus the network it runs (Fig. 13) and the
// per-frame size used for constellation sizing.
type App struct {
	Name    string
	Task    Task
	Network string
	// GPUPower is the measured average RTX 3090 draw (Table III "P(W)").
	GPUPower units.Power
	// GPUUtilization is the measured GPU utilization (0–1).
	GPUUtilization float64
	// InferTime is the measured batch inference time in seconds.
	InferTime float64
	// KPixelPerJoule is the measured energy efficiency (Table III).
	KPixelPerJoule float64
	// FrameMPixels is the app's scene size in megapixels; chosen so the
	// Table III "# SµDC" column reproduces for a 64-satellite
	// constellation at six frames/minute.
	FrameMPixels float64
}

// Suite is Table III, in the paper's row order.
var Suite = []App{
	{Name: "Air Pollution", Task: Regression, Network: "inception-v3",
		GPUPower: 119, GPUUtilization: 0.25, InferTime: 0.59, KPixelPerJoule: 1168, FrameMPixels: 45},
	{Name: "Crop Monitoring", Task: Classification, Network: "densenet-121",
		GPUPower: 222, GPUUtilization: 0.42, InferTime: 1.57, KPixelPerJoule: 395, FrameMPixels: 45},
	{Name: "Flood Detection", Task: Segmentation, Network: "unet",
		GPUPower: 325, GPUUtilization: 0.88, InferTime: 5.53, KPixelPerJoule: 307, FrameMPixels: 45},
	{Name: "Aircraft Detection", Task: ObjectRecognition, Network: "darknet-19",
		GPUPower: 124, GPUUtilization: 0.26, InferTime: 0.26, KPixelPerJoule: 74, FrameMPixels: 30},
	{Name: "Forage Quality Estimation", Task: Regression, Network: "resnet-50",
		GPUPower: 129, GPUUtilization: 0.27, InferTime: 0.56, KPixelPerJoule: 843, FrameMPixels: 45},
	{Name: "Urban Emergency Detection", Task: Classification, Network: "vgg-16",
		GPUPower: 266, GPUUtilization: 0.72, InferTime: 2.04, KPixelPerJoule: 569, FrameMPixels: 45},
	{Name: "Oil Spill Monitoring", Task: Segmentation, Network: "unet",
		GPUPower: 347, GPUUtilization: 0.98, InferTime: 3.84, KPixelPerJoule: 231, FrameMPixels: 45},
	{Name: "Traffic Monitoring", Task: ObjectRecognition, Network: "mobilenet-v2",
		GPUPower: 19, GPUUtilization: 0.009, InferTime: 2.72, KPixelPerJoule: 2597, FrameMPixels: 20},
	{Name: "Land Surface Clustering", Task: Clustering, Network: "resnet-18",
		GPUPower: 108, GPUUtilization: 0.02, InferTime: 0.35, KPixelPerJoule: 2175, FrameMPixels: 45},
	{Name: "Panoptic Segmentation", Task: PanopticSeg, Network: "panoptic-fpn",
		GPUPower: 160, GPUUtilization: 0.80, InferTime: 7.81, KPixelPerJoule: 20, FrameMPixels: 45},
}

// ByName finds a suite app by exact name.
func ByName(name string) (App, error) {
	for _, a := range Suite {
		if a.Name == name {
			return a, nil
		}
	}
	return App{}, fmt.Errorf("workload: unknown app %q", name)
}

// Lightest returns the app with the highest kpixel/J — the one that
// saturates compute with the least ISL-delivered data per joule spent, and
// therefore needs the highest ISL rate ("the most lightweight application",
// paper §III).
func Lightest() App {
	best := Suite[0]
	for _, a := range Suite[1:] {
		if a.KPixelPerJoule > best.KPixelPerJoule {
			best = a
		}
	}
	return best
}

// PixelThroughput returns the pixel processing rate (pixels/s) this app
// sustains on a compute budget of the given power: budget × kpixel/J.
func (a App) PixelThroughput(budget units.Power) (float64, error) {
	if budget < 0 {
		return 0, errors.New("workload: negative power budget")
	}
	return float64(budget) * a.KPixelPerJoule * 1e3, nil
}

// SaturationRate returns the ISL data rate needed to keep a compute budget
// fully fed with raw imagery for this app (Figure 8).
func (a App) SaturationRate(budget units.Power) (units.DataRate, error) {
	px, err := a.PixelThroughput(budget)
	if err != nil {
		return 0, err
	}
	return units.DataRate(px * BitsPerPixel), nil
}

// EnergyPerFrame returns the GPU energy to process one frame of this app.
func (a App) EnergyPerFrame() units.Energy {
	if a.KPixelPerJoule <= 0 {
		return 0
	}
	return units.Energy(a.FrameMPixels * 1e3 / a.KPixelPerJoule)
}

// FrameBits returns the raw size of one frame on the wire.
func (a App) FrameBits() float64 { return a.FrameMPixels * 1e6 * BitsPerPixel }

// Validate checks an app row for internal consistency.
func (a App) Validate() error {
	switch {
	case a.Name == "":
		return errors.New("workload: app without name")
	case a.GPUPower <= 0:
		return fmt.Errorf("workload: %s: non-positive power", a.Name)
	case a.GPUUtilization < 0 || a.GPUUtilization > 1:
		return fmt.Errorf("workload: %s: utilization out of [0,1]", a.Name)
	case a.InferTime <= 0:
		return fmt.Errorf("workload: %s: non-positive inference time", a.Name)
	case a.KPixelPerJoule <= 0:
		return fmt.Errorf("workload: %s: non-positive kpixel/J", a.Name)
	case a.FrameMPixels <= 0:
		return fmt.Errorf("workload: %s: non-positive frame size", a.Name)
	}
	return nil
}
