// Package lifecycle extends the paper's availability analysis (§VII) from
// servers within one SµDC to the fleet itself: satellites retire after
// their design lifetime (or fail early), and maintaining a capacity
// target means launching replacements whose unit cost falls along the
// Wright's-law experience curve as cumulative production grows.
//
// It answers the operator question the paper's Figures 22–25 set up: what
// does it cost to *keep* N SµDCs on orbit for a program horizon, and how
// much capacity margin does a given sparing policy buy?
package lifecycle

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"sudc/internal/par"
	"sudc/internal/reliability"
	"sudc/internal/units"
	"sudc/internal/wright"
)

// Policy describes a constellation-maintenance strategy.
type Policy struct {
	// Target is the number of operational SµDCs the program needs.
	Target int
	// Spares is how many extra satellites fly at any time (replacements
	// launch to restore Target+Spares whenever attrition drops below it).
	Spares int
	// DesignLifetime is each satellite's planned retirement age.
	DesignLifetime units.Years
	// EarlyFailureMTTF is the mean time to premature satellite loss
	// (random failures, Exp-distributed); zero disables early failures.
	EarlyFailureMTTF units.Years
	// Horizon is the program duration.
	Horizon units.Years
	// ReplacementLeadTime is the build+launch delay for a replacement.
	ReplacementLeadTime units.Years
}

// DefaultPolicy maintains 4 operational SµDCs with one spare for 15 years
// with the paper's 5-year design lifetime.
func DefaultPolicy() Policy {
	return Policy{
		Target:              4,
		Spares:              1,
		DesignLifetime:      5,
		EarlyFailureMTTF:    25,
		Horizon:             15,
		ReplacementLeadTime: 0.5,
	}
}

// Validate reports policy errors.
func (p Policy) Validate() error {
	switch {
	case p.Target < 1:
		return errors.New("lifecycle: target must be ≥ 1")
	case p.Spares < 0:
		return errors.New("lifecycle: negative spares")
	case p.DesignLifetime <= 0:
		return errors.New("lifecycle: design lifetime must be positive")
	case p.EarlyFailureMTTF < 0:
		return errors.New("lifecycle: negative failure MTTF")
	case p.Horizon <= 0:
		return errors.New("lifecycle: horizon must be positive")
	case p.ReplacementLeadTime < 0:
		return errors.New("lifecycle: negative lead time")
	}
	return nil
}

// fleetSize is the constellation size the policy maintains.
func (p Policy) fleetSize() int { return p.Target + p.Spares }

// ExpectedUnits returns the expected number of satellites built over the
// horizon: the initial fleet plus scheduled replacements plus expected
// early-failure replacements (each flying satellite fails at rate
// 1/MTTF while the program runs).
func (p Policy) ExpectedUnits() (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	n := float64(p.fleetSize())
	// Scheduled replacement waves: a satellite launched at t retires at
	// t + DesignLifetime; the last wave launches before Horizon.
	waves := math.Ceil(float64(p.Horizon)/float64(p.DesignLifetime)) - 1
	if waves < 0 {
		waves = 0
	}
	units := n * (1 + waves)
	if p.EarlyFailureMTTF > 0 {
		units += n * float64(p.Horizon) / float64(p.EarlyFailureMTTF)
	}
	return units, nil
}

// ProgramCost prices the maintenance program: one NRE plus the
// learning-discounted cost of the expected unit count.
func (p Policy) ProgramCost(nre, re units.Dollars, curve wright.Curve) (units.Dollars, error) {
	n, err := p.ExpectedUnits()
	if err != nil {
		return 0, err
	}
	cum, err := curve.CumulativeCost(re, int(math.Ceil(n)))
	if err != nil {
		return 0, err
	}
	return nre + cum, nil
}

// SimResult summarizes a Monte-Carlo run of the maintenance program.
type SimResult struct {
	// UnitsBuilt is the mean satellites manufactured over the horizon.
	UnitsBuilt float64
	// Availability is the fraction of program time with ≥ Target
	// operational satellites.
	Availability float64
	// MeanOperational is the time-averaged operational satellite count.
	MeanOperational float64
}

// simulateTrial runs one program trial against a caller-owned RNG and
// returns (satellites built, availability fraction, mean operational).
func (p Policy) simulateTrial(rng *rand.Rand) (built int, avail, meanOp float64) {
	horizon := float64(p.Horizon)
	const dt = 1.0 / 52 // weekly steps

	// ages of flying satellites; pending holds replacement arrival times.
	fleet := make([]float64, p.fleetSize())
	built = len(fleet)
	var pending []float64
	steps := 0
	availSteps := 0
	opSum := 0.0
	for t := 0.0; t < horizon; t += dt {
		// Deliver arrivals.
		var stillPending []float64
		for _, at := range pending {
			if at <= t {
				fleet = append(fleet, 0)
			} else {
				stillPending = append(stillPending, at)
			}
		}
		pending = stillPending
		// Age, retire, and randomly fail.
		var alive []float64
		for _, age := range fleet {
			age += dt
			if age >= float64(p.DesignLifetime) {
				continue // scheduled retirement
			}
			if p.EarlyFailureMTTF > 0 && rng.Float64() < dt/float64(p.EarlyFailureMTTF) {
				continue // early loss
			}
			alive = append(alive, age)
		}
		fleet = alive
		// Order replacements up to the maintained size. Scheduled
		// retirements are known in advance, so count only satellites
		// that will still be flying when an ordered unit arrives.
		surviving := 0
		for _, age := range fleet {
			if age+float64(p.ReplacementLeadTime) < float64(p.DesignLifetime) {
				surviving++
			}
		}
		deficit := p.fleetSize() - surviving - len(pending)
		for i := 0; i < deficit; i++ {
			pending = append(pending, t+float64(p.ReplacementLeadTime))
			built++
		}
		steps++
		if len(fleet) >= p.Target {
			availSteps++
		}
		opSum += float64(len(fleet))
	}
	return built, float64(availSteps) / float64(steps), opSum / float64(steps)
}

// trialResult is one trial's contribution to the SimResult means.
type trialResult struct {
	units, avail, op float64
}

func (p Policy) aggregate(parts []trialResult) SimResult {
	var totalUnits, totalAvail, totalOp float64
	for _, r := range parts {
		totalUnits += r.units
		totalAvail += r.avail
		totalOp += r.op
	}
	n := float64(len(parts))
	return SimResult{
		UnitsBuilt:      totalUnits / n,
		Availability:    totalAvail / n,
		MeanOperational: totalOp / n,
	}
}

// Simulate runs trials of the program: satellites retire at their design
// lifetime or fail early (exponential), replacements arrive after the
// lead time, and the fleet is topped back up to Target+Spares. Each
// trial draws from its own RNG stream forked from the seed, so trials
// run in parallel and the result is identical for any worker count.
func (p Policy) Simulate(trials int, seed int64) (SimResult, error) {
	if err := p.Validate(); err != nil {
		return SimResult{}, err
	}
	if trials < 1 {
		return SimResult{}, errors.New("lifecycle: trials must be ≥ 1")
	}
	parts := make([]trialResult, trials)
	par.ForN(trials, func(tr int) {
		b, a, o := p.simulateTrial(par.ForkRand(seed, tr))
		parts[tr] = trialResult{units: float64(b), avail: a, op: o}
	})
	return p.aggregate(parts), nil
}

// SimulateRand runs the trials serially against an injected RNG — the
// convenience path for callers composing their own stream discipline.
func (p Policy) SimulateRand(trials int, rng *rand.Rand) (SimResult, error) {
	if err := p.Validate(); err != nil {
		return SimResult{}, err
	}
	if trials < 1 {
		return SimResult{}, errors.New("lifecycle: trials must be ≥ 1")
	}
	if rng == nil {
		return SimResult{}, errors.New("lifecycle: nil rng")
	}
	parts := make([]trialResult, trials)
	for tr := range parts {
		b, a, o := p.simulateTrial(rng)
		parts[tr] = trialResult{units: float64(b), avail: a, op: o}
	}
	return p.aggregate(parts), nil
}

// String summarizes the policy.
func (p Policy) String() string {
	return fmt.Sprintf("maintain %d+%d SµDCs for %v (%v design life)",
		p.Target, p.Spares, p.Horizon, p.DesignLifetime)
}

// AvailabilityWithoutSpares returns the instantaneous probability that a
// fleet of exactly Target satellites (no spares, no replacement) still
// has all Target operational at time t — the analytic anchor the
// simulation is checked against (exact binomial, package reliability).
func (p Policy) AvailabilityWithoutSpares(tYears float64) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if p.EarlyFailureMTTF == 0 {
		if tYears < float64(p.DesignLifetime) {
			return 1, nil
		}
		return 0, nil
	}
	return reliability.Availability(p.Target, p.Target, tYears/float64(p.EarlyFailureMTTF))
}
