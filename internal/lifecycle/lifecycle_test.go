package lifecycle

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"sudc/internal/par"
	"sudc/internal/units"
	"sudc/internal/wright"
)

func TestValidate(t *testing.T) {
	if err := DefaultPolicy().Validate(); err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name   string
		mutate func(*Policy)
	}{
		{"no target", func(p *Policy) { p.Target = 0 }},
		{"negative spares", func(p *Policy) { p.Spares = -1 }},
		{"no lifetime", func(p *Policy) { p.DesignLifetime = 0 }},
		{"negative mttf", func(p *Policy) { p.EarlyFailureMTTF = -1 }},
		{"no horizon", func(p *Policy) { p.Horizon = 0 }},
		{"negative lead", func(p *Policy) { p.ReplacementLeadTime = -1 }},
	}
	for _, tt := range tests {
		p := DefaultPolicy()
		tt.mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: expected error", tt.name)
		}
	}
}

func TestExpectedUnits(t *testing.T) {
	// 5 satellites, 15-yr horizon, 5-yr lifetime: 3 generations = 15
	// scheduled units, plus early failures 5 × 15/25 = 3 → 18.
	p := DefaultPolicy()
	got, err := p.ExpectedUnits()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-18) > 1e-9 {
		t.Errorf("expected units = %v, want 18", got)
	}
	// No early failures: exactly the scheduled waves.
	p.EarlyFailureMTTF = 0
	got, _ = p.ExpectedUnits()
	if got != 15 {
		t.Errorf("scheduled-only units = %v, want 15", got)
	}
	// Horizon shorter than a lifetime: just the initial fleet.
	p.Horizon = 3
	got, _ = p.ExpectedUnits()
	if got != 5 {
		t.Errorf("single-generation units = %v, want 5", got)
	}
}

func TestProgramCostLearningMatters(t *testing.T) {
	p := DefaultPolicy()
	nre, re := units.MUSD(40), units.MUSD(52)
	cheap, err := p.ProgramCost(nre, re, wright.Curve{ProgressRatio: 0.75})
	if err != nil {
		t.Fatal(err)
	}
	flat, err := p.ProgramCost(nre, re, wright.Curve{ProgressRatio: 1})
	if err != nil {
		t.Fatal(err)
	}
	if cheap >= flat {
		t.Error("learning must reduce program cost")
	}
	// Flat learning = NRE + 18 × RE.
	want := float64(nre) + 18*float64(re)
	if !units.ApproxEqual(float64(flat), want, 1e-9) {
		t.Errorf("flat program cost = %v, want %v", flat, want)
	}
	bad := p
	bad.Target = 0
	if _, err := bad.ProgramCost(nre, re, wright.DefaultAerospace); err == nil {
		t.Error("invalid policy must error")
	}
}

func TestSimulateReplacementKeepsAvailability(t *testing.T) {
	p := DefaultPolicy()
	r, err := p.Simulate(30, 7)
	if err != nil {
		t.Fatal(err)
	}
	// With a spare and half-year lead time, the target is nearly always met.
	if r.Availability < 0.95 {
		t.Errorf("availability = %.3f, want ≥0.95 with a spare", r.Availability)
	}
	if r.MeanOperational < float64(p.Target) {
		t.Errorf("mean operational = %.2f, want ≥ target %d", r.MeanOperational, p.Target)
	}
	// Simulated build count is near the analytic expectation.
	want, _ := p.ExpectedUnits()
	if math.Abs(r.UnitsBuilt-want)/want > 0.25 {
		t.Errorf("units built = %.1f, analytic expectation %.1f", r.UnitsBuilt, want)
	}
}

func TestSparesImproveAvailability(t *testing.T) {
	lean := DefaultPolicy()
	lean.Spares = 0
	lean.ReplacementLeadTime = 1 // slow resupply stresses the fleet
	rich := lean
	rich.Spares = 2
	rLean, err := lean.Simulate(30, 11)
	if err != nil {
		t.Fatal(err)
	}
	rRich, err := rich.Simulate(30, 11)
	if err != nil {
		t.Fatal(err)
	}
	if rRich.Availability <= rLean.Availability {
		t.Errorf("spares must improve availability: %.3f vs %.3f",
			rRich.Availability, rLean.Availability)
	}
	if rRich.UnitsBuilt <= rLean.UnitsBuilt {
		t.Error("spares cost more units")
	}
}

func TestSimulateErrors(t *testing.T) {
	p := DefaultPolicy()
	if _, err := p.Simulate(0, 1); err == nil {
		t.Error("zero trials must error")
	}
	p.Target = 0
	if _, err := p.Simulate(10, 1); err == nil {
		t.Error("invalid policy must error")
	}
}

func TestSimulateDeterministic(t *testing.T) {
	p := DefaultPolicy()
	a, err := p.Simulate(5, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := p.Simulate(5, 42)
	if a != b {
		t.Error("same seed must reproduce results")
	}
}

func TestAvailabilityWithoutSpares(t *testing.T) {
	p := DefaultPolicy()
	// Analytic: 4 of 4 alive at t=5 with 25-yr MTTF: e^{-4·5/25} ≈ 0.449.
	got, err := p.AvailabilityWithoutSpares(5)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Exp(-4.0 * 5 / 25)
	if !units.ApproxEqual(got, want, 1e-9) {
		t.Errorf("availability = %v, want %v", got, want)
	}
	// Deterministic retirement with no random failures.
	p.EarlyFailureMTTF = 0
	if v, _ := p.AvailabilityWithoutSpares(3); v != 1 {
		t.Error("before retirement, availability is 1")
	}
	if v, _ := p.AvailabilityWithoutSpares(6); v != 0 {
		t.Error("after retirement, availability is 0")
	}
}

func TestPolicyString(t *testing.T) {
	s := DefaultPolicy().String()
	if !strings.Contains(s, "4+1") || !strings.Contains(s, "15 yr") {
		t.Errorf("String() = %q", s)
	}
}

func TestSimulateInvariantUnderWorkerCount(t *testing.T) {
	p := DefaultPolicy()
	ref, err := p.Simulate(16, 42)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 2, 8} {
		prev := par.SetDefaultWorkers(w)
		r, err := p.Simulate(16, 42)
		par.SetDefaultWorkers(prev)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if r != ref {
			t.Errorf("workers=%d: %+v differs from %+v", w, r, ref)
		}
	}
}

func TestSimulateRand(t *testing.T) {
	p := DefaultPolicy()
	a, err := p.SimulateRand(5, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.SimulateRand(5, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("SimulateRand with identical streams must be deterministic")
	}
	if _, err := p.SimulateRand(5, nil); err == nil {
		t.Error("nil rng must error")
	}
	if _, err := p.SimulateRand(0, rand.New(rand.NewSource(1))); err == nil {
		t.Error("zero trials must error")
	}
}

func TestSimulateRandErrors(t *testing.T) {
	p := DefaultPolicy()
	rng := rand.New(rand.NewSource(1))
	if _, err := p.SimulateRand(0, rng); err == nil {
		t.Error("zero trials must error")
	}
	if _, err := p.SimulateRand(10, nil); err == nil {
		t.Error("nil rng must error")
	}
	bad := p
	bad.Horizon = 0
	if _, err := bad.SimulateRand(10, rng); err == nil {
		t.Error("invalid policy must error")
	}
}

func TestExpectedUnitsRejectsInvalidPolicy(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Policy)
	}{
		{"no target", func(p *Policy) { p.Target = 0 }},
		{"negative spares", func(p *Policy) { p.Spares = -1 }},
		{"no lifetime", func(p *Policy) { p.DesignLifetime = 0 }},
		{"negative mttf", func(p *Policy) { p.EarlyFailureMTTF = -1 }},
		{"no horizon", func(p *Policy) { p.Horizon = 0 }},
		{"negative lead", func(p *Policy) { p.ReplacementLeadTime = -1 }},
	}
	for _, tt := range tests {
		p := DefaultPolicy()
		tt.mutate(&p)
		if _, err := p.ExpectedUnits(); err == nil {
			t.Errorf("%s: ExpectedUnits must reject the policy", tt.name)
		}
		if _, err := p.ProgramCost(units.Dollars(1e8), units.Dollars(1e7), wright.DefaultAerospace); err == nil {
			t.Errorf("%s: ProgramCost must reject the policy", tt.name)
		}
	}
}

func TestProgramCostRejectsBadCurve(t *testing.T) {
	p := DefaultPolicy()
	bad := wright.Curve{ProgressRatio: 1.5}
	if _, err := p.ProgramCost(units.Dollars(1e8), units.Dollars(1e7), bad); err == nil {
		t.Error("invalid learning curve must error")
	}
}
