// Package propulsion sizes a SµDC's propulsion subsystem: propellant mass
// via the Tsiolkovsky rocket equation, tank and thruster dry mass, and the
// thruster catalog (monopropellant, bipropellant, and electric options the
// paper contrasts when comparing SSCM-SµDC with SEER-Space).
//
// Note: the paper's text prints the rocket equation as
// m_fuel = m_dry(1 + e^{Δv/vₑ}); the correct Tsiolkovsky form, which we
// implement, is m_fuel = m_dry(e^{Δv/vₑ} − 1). The two agree to first order
// in Δv/vₑ minus a constant; the printed form is a typo (it would demand
// twice the dry mass in propellant even for Δv = 0).
package propulsion

import (
	"errors"
	"fmt"
	"math"

	"sudc/internal/units"
)

// Thruster describes a propulsion technology.
type Thruster struct {
	Name string
	// SpecificImpulse in seconds.
	SpecificImpulse float64
	// ThrusterMass is the dry mass of the thruster assembly itself.
	ThrusterMass units.Mass
	// TankageFraction is tank+plumbing mass as a fraction of propellant.
	TankageFraction float64
	// PowerDraw is the electrical draw while thrusting (significant only
	// for electric propulsion).
	PowerDraw units.Power
	// UnitCost is the recurring thruster hardware cost.
	UnitCost units.Dollars
}

// Thruster catalog. SSCM-SµDC is "designed around conventional
// monopropellant and bipropellant chemical thrusters" (paper §II);
// IonThruster is included to reproduce the SEER-Space accounting contrast.
var (
	Monopropellant = Thruster{
		Name:            "hydrazine monopropellant",
		SpecificImpulse: 220,
		ThrusterMass:    2.5,
		TankageFraction: 0.12,
		PowerDraw:       20,
		UnitCost:        250e3,
	}
	Bipropellant = Thruster{
		Name:            "MMH/NTO bipropellant",
		SpecificImpulse: 310,
		ThrusterMass:    5,
		TankageFraction: 0.15,
		PowerDraw:       40,
		UnitCost:        600e3,
	}
	IonThruster = Thruster{
		Name:            "gridded ion",
		SpecificImpulse: 2500,
		ThrusterMass:    8,
		TankageFraction: 0.10,
		PowerDraw:       1500,
		UnitCost:        1.2e6,
	}
)

// ExhaustVelocity returns vₑ = Isp·g₀ in m/s.
func (t Thruster) ExhaustVelocity() units.Velocity {
	return units.Velocity(t.SpecificImpulse * units.StandardGravity)
}

// PropellantFor returns the propellant mass to give dry mass mDry a total
// impulse of dv: m_p = m_dry(e^{Δv/vₑ} − 1).
func (t Thruster) PropellantFor(mDry units.Mass, dv units.Velocity) (units.Mass, error) {
	if mDry < 0 {
		return 0, errors.New("propulsion: negative dry mass")
	}
	if dv < 0 {
		return 0, errors.New("propulsion: negative Δv")
	}
	ve := float64(t.ExhaustVelocity())
	if ve <= 0 {
		return 0, fmt.Errorf("propulsion: thruster %q has no exhaust velocity", t.Name)
	}
	return units.Mass(float64(mDry) * (math.Exp(float64(dv)/ve) - 1)), nil
}

// Design is the sized propulsion subsystem for one mission.
type Design struct {
	Thruster Thruster
	// Propellant is the loaded propellant mass.
	Propellant units.Mass
	// TankMass is tank and feed-system mass.
	TankMass units.Mass
	// DryMass is thruster + tanks (excludes propellant).
	DryMass units.Mass
	// HardwareCost is the recurring propulsion hardware cost.
	HardwareCost units.Dollars
}

// WetMass returns dry subsystem mass plus propellant.
func (d Design) WetMass() units.Mass { return d.DryMass + d.Propellant }

// Size designs the propulsion subsystem to deliver dv to a satellite whose
// dry mass (including this subsystem's own dry mass) is mDry.
func Size(t Thruster, mDry units.Mass, dv units.Velocity) (Design, error) {
	prop, err := t.PropellantFor(mDry, dv)
	if err != nil {
		return Design{}, err
	}
	tank := units.Mass(t.TankageFraction * float64(prop))
	return Design{
		Thruster:     t,
		Propellant:   prop,
		TankMass:     tank,
		DryMass:      t.ThrusterMass + tank,
		HardwareCost: t.UnitCost + units.Dollars(float64(prop)*800), // ~$800/kg loaded propellant & loading ops
	}, nil
}
