package propulsion

import (
	"math"
	"testing"
	"testing/quick"

	"sudc/internal/units"
)

func TestExhaustVelocity(t *testing.T) {
	// 220 s × 9.80665 ≈ 2157 m/s.
	ve := float64(Monopropellant.ExhaustVelocity())
	if math.Abs(ve-220*9.80665) > 1e-9 {
		t.Errorf("vₑ = %v, want %v", ve, 220*9.80665)
	}
}

func TestTsiolkovskyZeroDv(t *testing.T) {
	// Δv = 0 must need zero propellant — this is exactly what the paper's
	// misprinted equation (1 + e^{Δv/vₑ}) would get wrong.
	m, err := Monopropellant.PropellantFor(500, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m != 0 {
		t.Errorf("zero Δv propellant = %v, want 0", m)
	}
}

func TestTsiolkovskyKnownPoint(t *testing.T) {
	// Δv = vₑ·ln2 doubles the wet mass: propellant = dry mass.
	ve := float64(Bipropellant.ExhaustVelocity())
	dv := units.Velocity(ve * math.Ln2)
	m, err := Bipropellant.PropellantFor(1000, dv)
	if err != nil {
		t.Fatal(err)
	}
	if !units.ApproxEqual(float64(m), 1000, 1e-12) {
		t.Errorf("propellant at Δv=vₑln2 = %v, want 1000", m)
	}
}

func TestPropellantErrors(t *testing.T) {
	if _, err := Monopropellant.PropellantFor(-1, 10); err == nil {
		t.Error("negative dry mass must error")
	}
	if _, err := Monopropellant.PropellantFor(100, -1); err == nil {
		t.Error("negative Δv must error")
	}
	bad := Thruster{Name: "broken"}
	if _, err := bad.PropellantFor(100, 10); err == nil {
		t.Error("zero Isp must error")
	}
}

func TestHigherIspNeedsLessPropellant(t *testing.T) {
	const dry = 800
	const dv = 250
	mono, _ := Monopropellant.PropellantFor(dry, dv)
	bi, _ := Bipropellant.PropellantFor(dry, dv)
	ion, _ := IonThruster.PropellantFor(dry, dv)
	if !(mono > bi && bi > ion) {
		t.Errorf("propellant must fall with Isp: mono=%v bi=%v ion=%v", mono, bi, ion)
	}
}

func TestSizeComposition(t *testing.T) {
	d, err := Size(Monopropellant, 800, 200)
	if err != nil {
		t.Fatal(err)
	}
	if d.DryMass != Monopropellant.ThrusterMass+d.TankMass {
		t.Error("dry mass must be thruster + tanks")
	}
	if d.WetMass() != d.DryMass+d.Propellant {
		t.Error("wet mass must be dry + propellant")
	}
	wantTank := units.Mass(Monopropellant.TankageFraction * float64(d.Propellant))
	if !units.ApproxEqual(float64(d.TankMass), float64(wantTank), 1e-12) {
		t.Errorf("tank mass = %v, want %v", d.TankMass, wantTank)
	}
	if d.HardwareCost <= Monopropellant.UnitCost {
		t.Error("hardware cost must exceed bare thruster cost when propellant loaded")
	}
}

func TestSizeError(t *testing.T) {
	if _, err := Size(Monopropellant, -5, 100); err == nil {
		t.Error("negative dry mass must error")
	}
}

func TestPropellantLinearInDryMass(t *testing.T) {
	f := func(raw uint16) bool {
		dry := units.Mass(1 + float64(raw))
		m1, err1 := Monopropellant.PropellantFor(dry, 150)
		m2, err2 := Monopropellant.PropellantFor(2*dry, 150)
		if err1 != nil || err2 != nil {
			return false
		}
		return units.ApproxEqual(float64(m2), 2*float64(m1), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropellantMonotoneInDv(t *testing.T) {
	f := func(raw uint8) bool {
		dv := units.Velocity(float64(raw))
		m1, err1 := Bipropellant.PropellantFor(500, dv)
		m2, err2 := Bipropellant.PropellantFor(500, dv+5)
		if err1 != nil || err2 != nil {
			return false
		}
		return m2 > m1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
