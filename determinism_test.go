package sudc

// Determinism contract of the parallel evaluation engine: every sweep,
// Monte-Carlo run, and experiment table must be identical for any worker
// count. The engine (internal/par) guarantees ordering; these tests pin
// the end-to-end property across the whole evaluation.

import (
	"strings"
	"testing"

	"sudc/internal/experiments"
	"sudc/internal/par"
)

// renderAll runs every paper exhibit through the parallel runner and
// concatenates the rendered tables.
func renderAll(t *testing.T, workers int) string {
	t.Helper()
	tables, err := experiments.RunAll(experiments.All(), workers)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, tbl := range tables {
		b.WriteString(tbl.String())
		b.WriteByte('\n')
	}
	return b.String()
}

func TestExperimentsInvariantUnderWorkerCount(t *testing.T) {
	ref := renderAll(t, 1)
	if ref == "" {
		t.Fatal("no rendered output")
	}
	for _, w := range []int{2, 8} {
		if got := renderAll(t, w); got != ref {
			t.Errorf("workers=%d: rendered experiment output differs from workers=1", w)
		}
	}
}

func TestExtensionsInvariantUnderWorkerCount(t *testing.T) {
	// Extensions exercise the Monte-Carlo paths (maintenance simulation)
	// on top of the analytic sweeps, so they pin the forked-stream
	// discipline as well.
	render := func(workers int) string {
		t.Helper()
		tables, err := experiments.RunAll(experiments.Extensions(), workers)
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		for _, tbl := range tables {
			b.WriteString(tbl.String())
		}
		return b.String()
	}
	ref := render(1)
	for _, w := range []int{2, 8} {
		if got := render(w); got != ref {
			t.Errorf("workers=%d: rendered extension output differs from workers=1", w)
		}
	}
}

func TestDefaultWorkerOverrideRoundTrips(t *testing.T) {
	prev := par.SetDefaultWorkers(3)
	if par.DefaultWorkers() != 3 {
		t.Errorf("DefaultWorkers = %d after override, want 3", par.DefaultWorkers())
	}
	par.SetDefaultWorkers(prev)
}
