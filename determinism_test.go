package sudc

// Determinism contract of the parallel evaluation engine: every sweep,
// Monte-Carlo run, and experiment table must be identical for any worker
// count. The engine (internal/par) guarantees ordering; these tests pin
// the end-to-end property across the whole evaluation.

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"sudc/internal/constellation"
	"sudc/internal/degrade"
	"sudc/internal/experiments"
	"sudc/internal/faults"
	"sudc/internal/netsim"
	"sudc/internal/obs"
	"sudc/internal/obs/slo"
	"sudc/internal/obs/trace"
	"sudc/internal/obs/window"
	"sudc/internal/par"
	"sudc/internal/par/partest"
	"sudc/internal/topo"
	"sudc/internal/units"
	"sudc/internal/workload"
)

// renderAll runs every paper exhibit through the parallel runner and
// concatenates the rendered tables.
func renderAll(t *testing.T, workers int) string {
	t.Helper()
	tables, err := experiments.RunAll(experiments.All(), workers)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, tbl := range tables {
		b.WriteString(tbl.String())
		b.WriteByte('\n')
	}
	return b.String()
}

func TestExperimentsInvariantUnderWorkerCount(t *testing.T) {
	ref := renderAll(t, 1)
	if ref == "" {
		t.Fatal("no rendered output")
	}
	for _, w := range []int{2, 8} {
		if got := renderAll(t, w); got != ref {
			t.Errorf("workers=%d: rendered experiment output differs from workers=1", w)
		}
	}
}

func TestExtensionsInvariantUnderWorkerCount(t *testing.T) {
	// Extensions exercise the Monte-Carlo paths (maintenance simulation)
	// on top of the analytic sweeps, so they pin the forked-stream
	// discipline as well.
	render := func(workers int) string {
		t.Helper()
		tables, err := experiments.RunAll(experiments.Extensions(), workers)
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		for _, tbl := range tables {
			b.WriteString(tbl.String())
		}
		return b.String()
	}
	ref := render(1)
	for _, w := range []int{2, 8} {
		if got := render(w); got != ref {
			t.Errorf("workers=%d: rendered extension output differs from workers=1", w)
		}
	}
}

func TestDefaultWorkerOverrideRoundTrips(t *testing.T) {
	partest.WithDefaultWorkers(t, 3)
	if par.DefaultWorkers() != 3 {
		t.Errorf("DefaultWorkers = %d after override, want 3", par.DefaultWorkers())
	}
}

func TestFaultInjectionInvariantUnderWorkerCount(t *testing.T) {
	// Fault schedules fork per-entity RNG streams from the replica seed,
	// so a fault-injected DES sweep must be byte-identical whether its
	// replicas run on 1, 2, or 8 workers.
	c := netsim.DefaultConfig(workload.Suite[0])
	c.Constellation = constellation.Constellation{Satellites: 2, FramesPerMinute: 6}
	c.Workers = 5
	c.NeedWorkers = 4
	c.BatchSize = 4
	c.BatchTimeout = 30 * time.Second
	c.Duration = time.Hour
	c.Faults = faults.Scenario{
		NodeMTTF:          2 * time.Hour,
		SEFIMTBE:          20 * time.Minute,
		SEFIRecovery:      30 * time.Second,
		ISLOutageMTBF:     30 * time.Minute,
		ISLOutageDuration: time.Minute,
	}
	c.Seed = 9
	ref, err := netsim.RunReplicas(c, 12, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 8} {
		got, err := netsim.RunReplicas(c, 12, w)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ref, got) {
			t.Errorf("workers=%d: fault-injected replica stats differ from workers=1", w)
		}
	}
}

func TestDegradedRunInvariantUnderWorkerCount(t *testing.T) {
	// The environment-coupled degradation engine extends the contract:
	// the modulation schedule is compiled once from the config and
	// replayed on the simulated clock, so a throttled, browned-out,
	// fault-injected sweep must stay byte-identical — replica stats and
	// merged metric snapshot — for any worker count. The 2-hour horizon
	// spans a full default-EO orbit, so every replica crosses an
	// eclipse brownout.
	c := netsim.DefaultConfig(workload.Suite[0])
	c.Constellation = constellation.Constellation{Satellites: 2, FramesPerMinute: 6}
	c.Workers = 5
	c.NeedWorkers = 4
	c.BatchSize = 4
	c.BatchTimeout = 30 * time.Second
	c.Duration = 2 * time.Hour
	c.Faults = faults.Scenario{
		NodeMTTF:          2 * time.Hour,
		SEFIMTBE:          20 * time.Minute,
		SEFIRecovery:      30 * time.Second,
		ISLOutageMTBF:     30 * time.Minute,
		ISLOutageDuration: time.Minute,
	}
	c.Seed = 9
	p := degrade.COTSProfile(0.75)
	c.Degrade = &p

	run := func(workers int) ([]netsim.Stats, string) {
		reg := obs.New()
		cc := c
		cc.Obs = reg.Scope("netsim")
		all, err := netsim.RunReplicas(cc, 12, workers)
		if err != nil {
			t.Fatal(err)
		}
		return all, reg.Snapshot().String()
	}
	refStats, refSnap := run(1)
	if refStats[0].ThrottledTime == 0 || refStats[0].BrownoutTime == 0 {
		t.Fatalf("degradation not exercised: %+v", refStats[0])
	}
	if !strings.Contains(refSnap, "netsim/r000/throttle/rate_mult") {
		t.Fatalf("degradation series missing from snapshot:\n%.400s", refSnap)
	}
	for _, w := range []int{2, 8} {
		stats, snap := run(w)
		if !reflect.DeepEqual(refStats, stats) {
			t.Errorf("workers=%d: degraded replica stats differ from workers=1", w)
		}
		if snap != refSnap {
			t.Errorf("workers=%d: degraded metric snapshot differs from workers=1", w)
		}
	}
}

func TestObsSnapshotInvariantUnderWorkerCount(t *testing.T) {
	// The observability stream extends the determinism contract: replica
	// metrics are sampled on the simulated clock and written under
	// per-replica scopes, so the merged default snapshot must be
	// byte-identical for any worker count.
	c := netsim.DefaultConfig(workload.Suite[0])
	c.Constellation = constellation.Constellation{Satellites: 2, FramesPerMinute: 6}
	c.Workers = 5
	c.NeedWorkers = 4
	c.BatchSize = 4
	c.BatchTimeout = 30 * time.Second
	c.Duration = time.Hour
	c.Faults = faults.Scenario{
		NodeMTTF:          2 * time.Hour,
		ISLOutageMTBF:     30 * time.Minute,
		ISLOutageDuration: time.Minute,
	}
	c.Seed = 9
	snap := func(workers int) string {
		reg := obs.New()
		cc := c
		cc.Obs = reg.Scope("netsim")
		if _, err := netsim.RunReplicas(cc, 12, workers); err != nil {
			t.Fatal(err)
		}
		return reg.Snapshot().String()
	}
	ref := snap(1)
	if !strings.Contains(ref, "netsim/r000/availability") ||
		!strings.Contains(ref, "netsim/r011/availability") {
		t.Fatalf("replica scopes missing from snapshot:\n%s", ref)
	}
	for _, w := range []int{2, 8} {
		if got := snap(w); got != ref {
			t.Errorf("workers=%d: merged metric snapshot differs from workers=1", w)
		}
	}
}

// traceExports runs a replicated DES scenario with the flight recorder
// attached and returns both exports (JSONL, Chrome trace-event JSON).
func traceExports(t *testing.T, c netsim.Config, workers int) (string, string) {
	t.Helper()
	rec := trace.New(0)
	cc := c
	cc.Trace = rec
	if _, err := netsim.RunReplicas(cc, 6, workers); err != nil {
		t.Fatal(err)
	}
	var jsonl, chrome bytes.Buffer
	if err := rec.WriteJSONL(&jsonl); err != nil {
		t.Fatal(err)
	}
	if err := rec.WriteChrome(&chrome); err != nil {
		t.Fatal(err)
	}
	return jsonl.String(), chrome.String()
}

func TestTraceExportInvariantUnderWorkerCount(t *testing.T) {
	// The flight recording extends the determinism contract to
	// individual frames: replica recorders scope per replica and events
	// carry only simulated time, so both exports must be byte-identical
	// whether the replicas ran on 1, 2, or 8 process workers — for a
	// fault-free scenario and for one exercising retries, losses,
	// sheds, node deaths, SEFI hangs, and ISL outages.
	base := netsim.DefaultConfig(workload.Suite[0])
	base.Constellation = constellation.Constellation{Satellites: 2, FramesPerMinute: 6}
	base.Workers = 5
	base.NeedWorkers = 4
	base.BatchSize = 4
	base.BatchTimeout = 30 * time.Second
	base.Duration = 30 * time.Minute
	base.Seed = 9

	faulted := base
	faulted.Faults = faults.Scenario{
		NodeMTTF:          2 * time.Hour,
		SEFIMTBE:          20 * time.Minute,
		SEFIRecovery:      30 * time.Second,
		ISLOutageMTBF:     30 * time.Minute,
		ISLOutageDuration: time.Minute,
	}
	faulted.RetryLimit = 3
	faulted.ShedThreshold = 40

	// The degraded scenario layers the COTS throttle/brownout schedule
	// over the faulted one; the 2-hour horizon crosses an eclipse so
	// the brownout re-dispatch path records events too.
	degraded := faulted
	degraded.Duration = 2 * time.Hour
	cots := degrade.COTSProfile(0.75)
	degraded.Degrade = &cots

	for _, tc := range []struct {
		name string
		cfg  netsim.Config
	}{
		{"fault-free", base},
		{"faulted", faulted},
		{"degraded", degraded},
	} {
		t.Run(tc.name, func(t *testing.T) {
			refJSONL, refChrome := traceExports(t, tc.cfg, 1)
			if refJSONL == "" || !strings.Contains(refJSONL, `"scope":"r005"`) {
				t.Fatalf("JSONL export missing replica scopes:\n%.400s", refJSONL)
			}
			for _, w := range []int{2, 8} {
				jsonl, chrome := traceExports(t, tc.cfg, w)
				if jsonl != refJSONL {
					t.Errorf("workers=%d: JSONL export differs from workers=1", w)
				}
				if chrome != refChrome {
					t.Errorf("workers=%d: Chrome export differs from workers=1", w)
				}
			}
		})
	}
}

func TestExperimentObsInvariantUnderWorkerCount(t *testing.T) {
	// RunAllObserved's deterministic sections (exhibit counter, span
	// counts, simulated durations) must not vary with the worker count;
	// only wall times may, and those stay out of the default snapshot.
	exps := experiments.All()[:6]
	snap := func(workers int) string {
		reg := obs.New()
		if _, err := experiments.RunAllObserved(exps, workers, reg); err != nil {
			t.Fatal(err)
		}
		return reg.Snapshot().String()
	}
	ref := snap(1)
	if !strings.Contains(ref, "counter experiments/exhibits 6") {
		t.Fatalf("exhibit counter missing:\n%s", ref)
	}
	for _, w := range []int{2, 8} {
		if got := snap(w); got != ref {
			t.Errorf("workers=%d: experiment metric snapshot differs from workers=1", w)
		}
	}
}

// shardExports runs one sharded topology configuration and returns its
// stats plus every observable byte stream: the merged obs snapshot,
// the JSONL trace export, and the Chrome trace export.
func shardExports(t *testing.T, c netsim.Config, shards int) (netsim.Stats, string, string, string) {
	t.Helper()
	reg := obs.New()
	rec := trace.New(0)
	cc := c
	cc.Obs = reg.Scope("netsim")
	cc.Trace = rec
	cc.Shards = shards
	s, err := netsim.Run(cc)
	if err != nil {
		t.Fatal(err)
	}
	var jsonl, chrome bytes.Buffer
	if err := rec.WriteJSONL(&jsonl); err != nil {
		t.Fatal(err)
	}
	if err := rec.WriteChrome(&chrome); err != nil {
		t.Fatal(err)
	}
	return s, reg.Snapshot().String(), jsonl.String(), chrome.String()
}

// sloReportOf runs one topology configuration with 10-minute windows
// and the default SLOs and renders the full per-window report.
func sloReportOf(t *testing.T, c netsim.Config, shards int) string {
	t.Helper()
	cc := c
	cc.Shards = shards
	cc.Window = 10 * time.Minute
	var wins []window.Window
	cc.OnWindow = func(w window.Window) { wins = append(wins, w) }
	sloCfg := slo.DefaultConfig()
	cc.SLO = &sloCfg
	if _, err := netsim.Run(cc); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	slo.WriteReport(&b, sloCfg, wins, slo.Run(sloCfg, wins))
	return b.String()
}

func TestSLOReportInvariantUnderShardAndWorkerCount(t *testing.T) {
	// The windowed telemetry merges cell fragments at the conservative
	// cross-cell watermark, so the per-window SLO report — counters,
	// occupancy attribution, burn rates, alert timeline — must be
	// byte-identical for every (process workers × shards) combination,
	// fault-free and with the full fault + degradation stack active.
	g, err := topo.Walker(4, 8, 5, 2, 250*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	base := netsim.TopologyConfig(workload.Suite[0], g)
	base.BatchSize = 4
	base.BatchTimeout = 30 * time.Second
	base.Duration = 30 * time.Minute
	base.Seed = 9

	degraded := base
	degraded.Faults = faults.Scenario{
		NodeMTTF:          2 * time.Hour,
		SEFIMTBE:          20 * time.Minute,
		SEFIRecovery:      30 * time.Second,
		ISLOutageMTBF:     30 * time.Minute,
		ISLOutageDuration: time.Minute,
	}
	degraded.RetryLimit = 3
	degraded.ShedThreshold = 40
	degraded.Duration = 2 * time.Hour
	cots := degrade.COTSProfile(0.75)
	degraded.Degrade = &cots

	for _, tc := range []struct {
		name string
		cfg  netsim.Config
	}{
		{"fault-free", base},
		{"degraded", degraded},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ref := sloReportOf(t, tc.cfg, 1)
			if !strings.Contains(ref, "SLO report:") || strings.Contains(ref, "SLO report: 0 windows") {
				t.Fatalf("report did not window the run:\n%.400s", ref)
			}
			if tc.name == "degraded" && strings.Contains(ref, "no burn-rate alerts") {
				t.Fatal("degraded scenario must fire burn-rate alerts")
			}
			for _, w := range []int{1, 2, 8} {
				for _, sh := range []int{1, 2, 8} {
					w, sh := w, sh
					t.Run(fmt.Sprintf("workers=%d/shards=%d", w, sh), func(t *testing.T) {
						partest.WithDefaultWorkers(t, w)
						if got := sloReportOf(t, tc.cfg, sh); got != ref {
							t.Errorf("workers=%d shards=%d: SLO report differs from the reference", w, sh)
						}
					})
				}
			}
		})
	}
}

func TestShardedTopologyInvariantUnderShardCount(t *testing.T) {
	// The sharded conservative-lookahead runner extends the determinism
	// contract to topology cells: the shard count only schedules which
	// goroutine advances a cell, so stats, the merged metric snapshot,
	// and both trace exports must be byte-identical for shards 1, 2,
	// and 8 — fault-free and with every fault process active.
	g, err := topo.Walker(4, 8, 5, 2, 250*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	base := netsim.TopologyConfig(workload.Suite[0], g)
	base.BatchSize = 4
	base.BatchTimeout = 30 * time.Second
	base.Duration = 30 * time.Minute
	base.Seed = 9

	faulted := base
	faulted.Faults = faults.Scenario{
		NodeMTTF:          2 * time.Hour,
		SEFIMTBE:          20 * time.Minute,
		SEFIRecovery:      30 * time.Second,
		ISLOutageMTBF:     30 * time.Minute,
		ISLOutageDuration: time.Minute,
	}
	faulted.RetryLimit = 3
	faulted.ShedThreshold = 40

	degraded := faulted
	degraded.Duration = 2 * time.Hour
	cots := degrade.COTSProfile(0.75)
	degraded.Degrade = &cots

	for _, tc := range []struct {
		name string
		cfg  netsim.Config
	}{
		{"fault-free", base},
		{"faulted", faulted},
		{"degraded", degraded},
	} {
		t.Run(tc.name, func(t *testing.T) {
			refStats, refSnap, refJSONL, refChrome := shardExports(t, tc.cfg, 1)
			if refStats.CrossShardFrames == 0 {
				t.Fatal("scenario produced no cross-shard traffic — the synchronizer is not exercised")
			}
			if !strings.Contains(refSnap, "netsim/c000/") || !strings.Contains(refSnap, "netsim/c003/") {
				t.Fatalf("per-cell scopes missing from snapshot:\n%.400s", refSnap)
			}
			if !strings.Contains(refJSONL, `"scope":"c002"`) {
				t.Fatalf("per-cell trace scopes missing:\n%.400s", refJSONL)
			}
			for _, sh := range []int{2, 8} {
				s, snap, jsonl, chrome := shardExports(t, tc.cfg, sh)
				if s != refStats {
					t.Errorf("shards=%d: stats differ from shards=1", sh)
				}
				if snap != refSnap {
					t.Errorf("shards=%d: metric snapshot differs from shards=1", sh)
				}
				if jsonl != refJSONL {
					t.Errorf("shards=%d: JSONL export differs from shards=1", sh)
				}
				if chrome != refChrome {
					t.Errorf("shards=%d: Chrome export differs from shards=1", sh)
				}
			}
		})
	}
}

func TestClustersRingInvariantUnderShardAndWorkerCount(t *testing.T) {
	// A relay ring has heterogeneous cell-graph delays: 2 ms FSO hops
	// inside each cluster and 400 ms ring ISLs between them, so the
	// per-cell lookahead fixpoint assigns genuinely different limits per
	// cell and round — the regime the old global min-delay window never
	// exercised. Every export must stay byte-identical across process
	// worker and shard counts, fault-free and degraded.
	g, err := topo.ClustersRing(6, 8, 4, 2, 10*units.Gbps, 2*time.Millisecond, 400*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	base := netsim.TopologyConfig(workload.Suite[0], g)
	base.BatchSize = 4
	base.BatchTimeout = 30 * time.Second
	base.Duration = 30 * time.Minute
	base.Seed = 9

	degraded := base
	degraded.Faults = faults.Scenario{
		NodeMTTF:          2 * time.Hour,
		SEFIMTBE:          20 * time.Minute,
		SEFIRecovery:      30 * time.Second,
		ISLOutageMTBF:     30 * time.Minute,
		ISLOutageDuration: time.Minute,
	}
	degraded.RetryLimit = 3
	degraded.ShedThreshold = 40
	degraded.Duration = 2 * time.Hour
	cots := degrade.COTSProfile(0.75)
	degraded.Degrade = &cots

	for _, tc := range []struct {
		name string
		cfg  netsim.Config
	}{
		{"fault-free", base},
		{"degraded", degraded},
	} {
		t.Run(tc.name, func(t *testing.T) {
			refStats, refSnap, refJSONL, refChrome := shardExports(t, tc.cfg, 1)
			if refStats.CrossShardFrames == 0 {
				t.Fatal("relay clusters produced no cross-cell traffic")
			}
			if refStats.Sync.Rounds == 0 || refStats.Sync.CellRuns == 0 {
				t.Fatalf("sync stats not populated: %+v", refStats.Sync)
			}
			for _, w := range []int{1, 2, 8} {
				for _, sh := range []int{1, 2, 8} {
					w, sh := w, sh
					t.Run(fmt.Sprintf("workers=%d/shards=%d", w, sh), func(t *testing.T) {
						partest.WithDefaultWorkers(t, w)
						s, snap, jsonl, chrome := shardExports(t, tc.cfg, sh)
						if s != refStats {
							t.Errorf("stats differ from workers=1/shards=1:\n got  %+v\n want %+v", s, refStats)
						}
						if snap != refSnap {
							t.Error("metric snapshot differs from workers=1/shards=1")
						}
						if jsonl != refJSONL {
							t.Error("JSONL export differs from workers=1/shards=1")
						}
						if chrome != refChrome {
							t.Error("Chrome export differs from workers=1/shards=1")
						}
					})
				}
			}
		})
	}
}
