module sudc

go 1.22
